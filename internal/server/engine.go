// Package server is the network layer over the probabilistic engine: a TCP
// listener speaking the internal/wire protocol, one session goroutine per
// connection, and a bounded worker pool that admits a fixed number of
// concurrently executing queries with queueing and per-query timeouts —
// the missing piece between the paper's embedded engine and a DBMS-shaped
// deployment serving many clients.
package server

import (
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"probdb/internal/core"
	"probdb/internal/exec"
	"probdb/internal/plan"
	"probdb/internal/query"
	"probdb/internal/storage"
	"probdb/internal/store"
	"probdb/internal/vfs"
	"probdb/internal/wal"
	"probdb/internal/wire"
)

// heapExt is the filename suffix of one table's heap file in the data dir.
const heapExt = ".heap"

// walFile names the write-ahead log belonging to checkpoint generation gen.
// The generation is baked into the name so a log can never be mistaken for
// the tail of a different checkpoint's history: after a crash anywhere in
// the checkpoint protocol, the manifest's generation selects exactly the
// log whose records are not yet folded into the heap snapshots.
func walFile(gen uint64) string { return fmt.Sprintf("wal.%d.log", gen) }

// tableFile is one table's checkpointed snapshot on disk: its heap file,
// the pager over it, and the pool the snapshot was written through. The
// file is immutable while referenced by the manifest; SELECTs cold-scan it
// through per-query scratch pools and checkpoints replace it wholesale.
type tableFile struct {
	file  string // basename within the data dir
	path  string
	pager *storage.FilePager
	pool  *storage.Pool
}

// quarantined is the health record of a table whose heap file failed to
// read — a checksum mismatch or any other load error. The table is removed
// from the catalog but its file and manifest entry are kept (evidence, and
// a possible manual salvage); only DROP TABLE discards it.
type quarantined struct {
	file string
	err  error
}

// EngineConfig tunes an Engine. Zero values take the documented defaults.
type EngineConfig struct {
	// Dir is the data directory; empty means an ephemeral in-memory engine.
	Dir string
	// PoolPages is the buffer-pool capacity used for write-through pools
	// and per-query scan pools. Default 64.
	PoolPages int
	// CheckpointBytes auto-checkpoints when the WAL grows past this many
	// bytes. Default 1 MiB; negative disables auto-checkpointing.
	CheckpointBytes int64
	// Parallelism is the degree of parallelism for operator execution:
	// 0 = one worker per logical CPU, 1 = sequential. Results are identical
	// at every setting.
	Parallelism int
	// FS is the filesystem the persistence path runs on. Default the real
	// OS; tests substitute a fault-injecting implementation.
	FS vfs.FS
	// Logf, when set, receives recovery and checkpoint lifecycle messages.
	Logf func(format string, args ...any)
}

func (c *EngineConfig) fill() {
	if c.PoolPages < 1 {
		c.PoolPages = 64
	}
	if c.CheckpointBytes == 0 {
		c.CheckpointBytes = 1 << 20
	}
	if c.FS == nil {
		c.FS = vfs.OS
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Engine executes statements for the server: an authoritative in-memory
// catalog (query.DB) persisted under a data directory with full crash
// safety. Every mutating statement is appended to a checksummed write-ahead
// log and fsync'd *before* it executes; heap files hold checkpointed
// snapshots and are replaced atomically (fresh generation-named file, then
// an fsync'd manifest rename), never modified in place. Recovery therefore
// reduces to: load the snapshots the manifest names, replay the intact WAL
// records on top, and checkpoint — a restart after a crash at any point
// converges to exactly the committed statements. Heap pages carry CRC32C
// checksums; a corrupt page quarantines its table instead of killing the
// server.
//
// SELECTs over persisted tables are executed against a cold scan of the
// heap through a scratch buffer pool, so every query's Result carries the
// page-read accounting the paper's Fig. 5 is built on — per query, not
// amortized across a session. (A SELECT referencing tables with WAL-only
// changes checkpoints them first, so the scan always sees current data.)
//
// With an empty data dir path the engine is ephemeral: everything runs on
// the in-memory catalog and the I/O counters stay zero.
type Engine struct {
	mu  sync.Mutex
	cfg EngineConfig
	db  *query.DB

	tables     map[string]*tableFile // checkpointed snapshots by table name
	dirty      map[string]bool       // tables whose memory state is ahead of disk
	quarantine map[string]*quarantined
	wal        *wal.Log
	gen        uint64
	// broken latches a checkpoint failure past the commit point (the engine
	// can no longer guarantee write durability); mutations are refused
	// until a restart recovers.
	broken error

	// retired accumulates the final counters of pools that were closed
	// (DROP, checkpoint rewrite): the engine-wide I/O sum stays monotone so
	// per-query deltas never underflow.
	retired storage.Stats

	// execHook, when non-nil (tests), runs at the top of every Execute —
	// the seam fault and panic injection use.
	execHook func(sql string)
}

// OpenEngine creates an engine over cfg.Dir, recovering any previously
// persisted state: manifest snapshots are loaded (damaged tables are
// quarantined, not fatal), the WAL is replayed, and a checkpoint folds the
// replayed tail back into snapshots.
func OpenEngine(cfg EngineConfig) (*Engine, error) {
	cfg.fill()
	e := &Engine{
		cfg:        cfg,
		db:         query.Open(),
		tables:     map[string]*tableFile{},
		dirty:      map[string]bool{},
		quarantine: map[string]*quarantined{},
	}
	e.db.SetParallelism(cfg.Parallelism)
	if cfg.Dir == "" {
		return e, nil
	}
	if err := cfg.FS.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: data dir: %w", err)
	}
	if err := e.recoverLocked(); err != nil {
		e.Abort()
		return nil, err
	}
	return e, nil
}

// recoverLocked brings the engine to the committed state of the data dir.
func (e *Engine) recoverLocked() error {
	fsys, dir := e.cfg.FS, e.cfg.Dir
	m, err := readManifest(fsys, dir)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// No manifest: either a fresh directory or a pre-WAL (v1) layout.
		heaps, gerr := fsys.Glob(filepath.Join(dir, "*"+heapExt))
		if gerr != nil {
			return gerr
		}
		if len(heaps) > 0 {
			return fmt.Errorf("server: %s holds heap files but no MANIFEST: "+
				"the directory predates the write-ahead-log layout; re-import its tables", dir)
		}
		m = &manifest{Gen: 0}
		if werr := writeManifest(fsys, dir, m); werr != nil {
			return werr
		}
	case err != nil:
		return err
	}
	e.gen = m.Gen

	for _, ent := range m.Tables {
		if lerr := e.loadTableLocked(ent); lerr != nil {
			e.quarantine[ent.Name] = &quarantined{file: ent.File, err: lerr}
			e.cfg.Logf("probserve: quarantined table %q (%s): %v", ent.Name, ent.File, lerr)
		}
	}
	e.restorePlannerLocked(m)

	// Open (or create) this generation's WAL and replay its intact records.
	wpath := filepath.Join(dir, walFile(e.gen))
	var recs []wal.Record
	if _, serr := fsys.Stat(wpath); errors.Is(serr, os.ErrNotExist) {
		// A crash after the manifest commit but before the new WAL was
		// created: the snapshots already contain everything.
		if e.wal, err = wal.Create(fsys, wpath); err != nil {
			return err
		}
		if err := fsys.SyncDir(dir); err != nil {
			return err
		}
	} else {
		e.wal, recs, err = wal.Open(fsys, wpath)
		if errors.Is(err, wal.ErrBadMagic) {
			// A crash between the checkpoint's manifest commit and the new
			// WAL's header write (or mid-write) leaves a log whose magic
			// never became durable — and by the WAL's contract such a log
			// holds no committed records. Recreate it empty.
			e.cfg.Logf("probserve: recovery: %v; recreating empty log", err)
			if e.wal, err = wal.Create(fsys, wpath); err != nil {
				return err
			}
			if err = fsys.SyncDir(dir); err != nil {
				return err
			}
		} else if err != nil {
			return err
		}
	}
	replayed := 0
	for _, r := range recs {
		if r.Type != wal.TypeStatement {
			e.cfg.Logf("probserve: recovery: skipping unknown WAL record type %d", r.Type)
			continue
		}
		sql := string(r.Data)
		stmt, perr := query.Parse(sql)
		if perr != nil {
			e.cfg.Logf("probserve: recovery: unparseable WAL statement %q: %v", sql, perr)
			continue
		}
		if _, aerr := e.applyLocked(sql, stmt); aerr != nil {
			// A statement that failed when first executed fails identically
			// here; either way the catalog matches the pre-crash state.
			e.cfg.Logf("probserve: recovery: replayed statement failed (as it may have originally): %v", aerr)
		}
		replayed++
	}
	e.gcLocked(m)
	if replayed > 0 || len(e.dirty) > 0 {
		e.cfg.Logf("probserve: recovery: replayed %d WAL statement(s) at generation %d", replayed, e.gen)
		if cerr := e.checkpointLocked(); cerr != nil {
			// Not fatal: the WAL still holds the tail durably.
			e.cfg.Logf("probserve: recovery checkpoint failed: %v", cerr)
		}
	}
	return nil
}

// restorePlannerLocked reinstalls the planner catalog the manifest recorded
// at the last checkpoint: statistics decode straight back, index definitions
// rebuild their structures from the reloaded tables. Runs before WAL replay
// so replayed DML maintains the indexes incrementally, exactly as the live
// execution did. Every failure degrades — the table plans as an unanalyzed,
// unindexed full scan — because a planner without state is merely slower,
// never wrong.
func (e *Engine) restorePlannerLocked(m *manifest) {
	for _, se := range m.Stats {
		if _, ok := e.db.Table(se.Table); !ok {
			continue // quarantined or vanished: stats die with the table
		}
		raw, err := base64.StdEncoding.DecodeString(se.Data)
		if err == nil {
			var ts *plan.TableStats
			if ts, err = plan.DecodeStats(raw); err == nil {
				e.db.InstallStats(se.Table, ts)
				continue
			}
		}
		e.cfg.Logf("probserve: recovery: dropping stats for %q (re-run ANALYZE): %v", se.Table, err)
	}
	for _, ie := range m.Indexes {
		if _, ok := e.db.Table(ie.Table); !ok {
			continue
		}
		if _, err := e.db.Exec(fmt.Sprintf("CREATE INDEX ON %s (%s)", ie.Table, ie.Col)); err != nil {
			e.cfg.Logf("probserve: recovery: dropping index on %s(%s) (re-run CREATE INDEX): %v",
				ie.Table, ie.Col, err)
		}
	}
}

// loadTableLocked opens one manifest entry's snapshot and attaches it.
func (e *Engine) loadTableLocked(ent manifestEntry) error {
	path := filepath.Join(e.cfg.Dir, ent.File)
	pager, err := storage.OpenFileFS(e.cfg.FS, path)
	if err != nil {
		return err
	}
	pool := storage.NewPool(pager, e.cfg.PoolPages)
	t, err := store.LoadTable(storage.NewHeap(pool), e.db.Registry())
	if err != nil {
		pager.Close()
		return err
	}
	if t.Name != ent.Name {
		pager.Close()
		return fmt.Errorf("server: %s holds table %q, want %q", path, t.Name, ent.Name)
	}
	if err := e.db.Attach(t); err != nil {
		pager.Close()
		return err
	}
	e.retired = e.retired.Add(pool.Stats())
	pool.ResetStats()
	e.tables[ent.Name] = &tableFile{file: ent.File, path: path, pager: pager, pool: pool}
	return nil
}

// gcLocked removes files the manifest does not reference: snapshots and
// logs left behind by a crashed checkpoint, and stale manifest temp files.
// Best-effort — a leftover file is wasted space, never incorrectness.
func (e *Engine) gcLocked(m *manifest) {
	fsys, dir := e.cfg.FS, e.cfg.Dir
	live := m.files()
	if heaps, err := fsys.Glob(filepath.Join(dir, "*"+heapExt)); err == nil {
		for _, p := range heaps {
			if !live[filepath.Base(p)] {
				fsys.Remove(p) //nolint:errcheck
			}
		}
	}
	cur := walFile(e.gen)
	if logs, err := fsys.Glob(filepath.Join(dir, "wal.*.log")); err == nil {
		for _, p := range logs {
			if filepath.Base(p) != cur {
				fsys.Remove(p) //nolint:errcheck
			}
		}
	}
	fsys.Remove(filepath.Join(dir, manifestName+".tmp")) //nolint:errcheck
}

// validTableName gates the table-name → filename mapping: the SQL lexer
// only produces identifiers, but defense in depth costs one loop.
func validTableName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// DB exposes the authoritative catalog (for tests).
func (e *Engine) DB() *query.DB { return e.db }

// Quarantined returns the tables currently quarantined after corruption,
// keyed by name.
func (e *Engine) Quarantined() map[string]error {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]error, len(e.quarantine))
	for name, q := range e.quarantine {
		out[name] = q.err
	}
	return out
}

// Close checkpoints (folding any WAL tail into snapshots) and closes every
// file. After a clean Close the WAL is empty and restart replays nothing.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var first error
	if e.cfg.Dir != "" && e.broken == nil {
		first = e.checkpointLocked()
	}
	e.closeFilesLocked()
	return first
}

// Abort closes every file handle without flushing or checkpointing — the
// crash path, used by recovery tests and failed opens. State on disk stays
// exactly as the last completed I/O left it.
func (e *Engine) Abort() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closeFilesLocked()
}

func (e *Engine) closeFilesLocked() {
	for name, tf := range e.tables {
		tf.pager.Close() //nolint:errcheck
		delete(e.tables, name)
	}
	if e.wal != nil {
		e.wal.Close() //nolint:errcheck
		e.wal = nil
	}
	if e.broken == nil {
		e.broken = errors.New("server: engine closed")
	}
}

// isCheckpointSQL recognizes the engine-level CHECKPOINT command (not part
// of the query language: it has no effect on the catalog).
func isCheckpointSQL(sql string) bool {
	s := strings.TrimSpace(sql)
	s = strings.TrimSuffix(s, ";")
	return strings.EqualFold(strings.TrimSpace(s), "CHECKPOINT")
}

// Execute runs one statement and packages its outcome, including latency,
// the statement's buffer-pool traffic, and its WAL bytes, as a wire Result.
// Statements are serialized: the engine below is single-writer and the
// stats deltas must be attributable to exactly one query.
func (e *Engine) Execute(sql string) (*wire.Result, error) {
	if h := e.execHook; h != nil {
		h(sql)
	}
	e.mu.Lock()
	defer e.mu.Unlock()

	d := e.beginStatsLocked()

	var qr *query.Result
	var scratch storage.Stats
	var scratchCache exec.CacheStats
	var err error
	if isCheckpointSQL(sql) {
		if err = e.checkpointLocked(); err == nil {
			qr = &query.Result{Message: fmt.Sprintf("checkpoint complete (generation %d)", e.gen)}
		}
	} else {
		var stmt query.Stmt
		stmt, err = query.Parse(sql)
		if err != nil {
			return nil, err
		}
		switch s := stmt.(type) {
		case query.SelectStmt:
			qr, scratch, scratchCache, err = e.execSelectLocked(sql, s)
		case query.CreateTable, query.Insert, query.Delete, query.Drop,
			query.Analyze, query.CreateIndex:
			// ANALYZE and CREATE INDEX mutate the planner catalog (stats,
			// index definitions); WAL-logging them makes that state as
			// durable as the data, with the manifest carrying it across
			// checkpoints.
			qr, err = e.execMutationLocked(sql, stmt)
		default:
			// EXPLAIN, SHOW TABLES, DESCRIBE and anything new run directly
			// on the in-memory catalog.
			qr, err = e.db.Exec(sql)
		}
	}
	if err != nil {
		return nil, err
	}
	res := e.finishStatsLocked(d, qr, scratch, scratchCache)
	if qr.Table != nil {
		res.Table = wire.FromTable(qr.Table)
		res.Stats.Rows = uint64(len(res.Table.Rows))
	}
	return res, nil
}

// ExecuteStream runs one statement like Execute, but streams a plain
// SELECT's result batches to sink as the operator tree produces them — the
// first batch reaches the sink before the scan has finished, and the engine
// never materializes the result relation. It returns streamed=true when the
// rows went through the sink; the Result then carries only the trailing
// message/affected-count/stats (its Table is nil). Statements without
// streamable output — DDL, DML, aggregates, EXPLAIN, CHECKPOINT — fall back
// to Execute (streamed=false, sink never called) and return a full Result.
//
// The sink runs while the engine's statement lock is held: a slow consumer
// exerts backpressure on this statement, and — by the engine's serialized
// execution model — on statements queued behind it. ctx aborts the operator
// tree between batches (a timeout or a vanished client); sink errors do the
// same and come back wrapped.
func (e *Engine) ExecuteStream(ctx context.Context, sql string, sink func(hdr *core.Table, batch []*core.Tuple) error) (*wire.Result, bool, error) {
	if isCheckpointSQL(sql) {
		res, err := e.Execute(sql)
		return res, false, err
	}
	stmt, err := query.Parse(sql)
	if err != nil {
		return nil, false, err
	}
	s, ok := stmt.(query.SelectStmt)
	if !ok || s.Agg != "" {
		res, err := e.Execute(sql)
		return res, false, err
	}
	if h := e.execHook; h != nil {
		h(sql)
	}
	e.mu.Lock()
	defer e.mu.Unlock()

	d := e.beginStatsLocked()
	db, io, cacheFn, err := e.selectDBLocked(s)
	if err != nil {
		return nil, true, err
	}
	qr, err := db.ExecStream(ctx, sql, sink)
	if err != nil {
		return nil, true, err
	}
	res := e.finishStatsLocked(d, qr, io, cacheFn())
	res.Stats.Rows = uint64(qr.Affected)
	return res, true, nil
}

// statMarks snapshots the engine counters at statement start; the matching
// finishStatsLocked turns them into the per-statement deltas of the Result.
type statMarks struct {
	start time.Time
	io    storage.Stats
	wal   int64
	cache exec.CacheStats
}

func (e *Engine) beginStatsLocked() statMarks {
	return statMarks{
		start: time.Now(),
		io:    e.ioStatsLocked(),
		wal:   e.walSizeLocked(),
		cache: e.db.Registry().MassCache().Stats(),
	}
}

// finishStatsLocked packages a finished statement's outcome and stat deltas
// as a wire Result (without the table — callers attach rows or row counts).
func (e *Engine) finishStatsLocked(d statMarks, qr *query.Result, scratch storage.Stats, scratchCache exec.CacheStats) *wire.Result {
	delta := e.ioStatsLocked().Sub(d.io).Add(scratch)
	// Mass-cache traffic: the catalog registry's delta plus whatever a
	// scratch scan's own registry accumulated before being discarded.
	cacheDelta := e.db.Registry().MassCache().Stats().Sub(d.cache).Add(scratchCache)
	// A checkpoint during the statement rolls the WAL and shrinks it below
	// the starting size; clamp so the per-statement delta never underflows.
	walDelta := e.walSizeLocked() - d.wal
	if walDelta < 0 {
		walDelta = 0
	}
	return &wire.Result{
		Message:  qr.Message,
		Affected: uint64(qr.Affected),
		Stats: wire.Stats{
			LatencyMicros:    uint64(time.Since(d.start).Microseconds()),
			PageReads:        delta.PageReads,
			PageHits:         delta.Hits,
			PageWrites:       delta.PageWrites,
			WALBytes:         uint64(walDelta),
			MassCacheHits:    cacheDelta.Hits,
			MassCacheMiss:    cacheDelta.Misses,
			IndexProbes:      qr.Planner.IndexProbes,
			IndexPruned:      qr.Planner.IndexPruned,
			PlannerFallbacks: qr.Planner.PlannerFallbacks,
		},
	}
}

// walSizeLocked returns the WAL's current size, monotone within one
// generation (a checkpoint rolls the log and resets it).
func (e *Engine) walSizeLocked() int64 {
	if e.wal == nil {
		return 0
	}
	return e.wal.Size()
}

// ioStatsLocked sums the persistent pools' counters plus every retired
// pool's final reading; the total is monotone non-decreasing.
func (e *Engine) ioStatsLocked() storage.Stats {
	s := e.retired
	for _, tf := range e.tables {
		s = s.Add(tf.pool.Stats())
	}
	return s
}

// execMutationLocked is the write path: WAL first (fsync'd), then the
// in-memory catalog. The statement is committed the moment its log record
// is durable; the heap snapshot catches up at the next checkpoint.
func (e *Engine) execMutationLocked(sql string, stmt query.Stmt) (*query.Result, error) {
	if e.cfg.Dir == "" {
		return e.applyEphemeralLocked(sql, stmt)
	}
	if e.broken != nil {
		return nil, fmt.Errorf("server: engine is read-only after a durability failure: %w", e.broken)
	}
	if err := e.precheckLocked(stmt); err != nil {
		return nil, err
	}
	if err := e.wal.Append(wal.TypeStatement, []byte(sql)); err != nil {
		return nil, fmt.Errorf("server: statement not durable: %w", err)
	}
	qr, err := e.applyLocked(sql, stmt)
	if err != nil {
		// The WAL record stays: replay re-executes the statement against
		// the same state and fails identically, so disk and memory agree.
		return nil, err
	}
	if e.cfg.CheckpointBytes > 0 && e.wal.Size() >= e.cfg.CheckpointBytes {
		if cerr := e.checkpointLocked(); cerr != nil {
			// The statement itself is durable in the WAL; surface the
			// checkpoint failure to the log, not to this client.
			e.cfg.Logf("probserve: auto-checkpoint failed: %v", cerr)
		}
	}
	return qr, nil
}

// applyEphemeralLocked runs a mutation on a diskless engine.
func (e *Engine) applyEphemeralLocked(sql string, stmt query.Stmt) (*query.Result, error) {
	_ = stmt
	return e.db.Exec(sql)
}

// precheckLocked rejects statements that must not reach the WAL: writes
// against quarantined tables (their disk state is unknown) and table names
// that cannot map to a heap file.
func (e *Engine) precheckLocked(stmt query.Stmt) error {
	quarantineErr := func(name string) error {
		if q, ok := e.quarantine[name]; ok {
			return fmt.Errorf("server: table %q is quarantined after corruption (%v); DROP it to discard", name, q.err)
		}
		return nil
	}
	switch s := stmt.(type) {
	case query.CreateTable:
		if !validTableName(s.Name) {
			return fmt.Errorf("server: table name %q not persistable", s.Name)
		}
		return quarantineErr(s.Name)
	case query.Insert:
		return quarantineErr(s.Table)
	case query.Delete:
		return quarantineErr(s.Table)
	case query.Analyze:
		if s.Table != "" {
			return quarantineErr(s.Table)
		}
	case query.CreateIndex:
		return quarantineErr(s.Table)
	}
	return nil
}

// applyLocked executes an already-logged mutation against the catalog and
// updates the engine's dirty-table bookkeeping. It is the single code path
// shared by live execution and recovery replay, so both walk identical
// state transitions.
func (e *Engine) applyLocked(sql string, stmt query.Stmt) (*query.Result, error) {
	if s, ok := stmt.(query.Drop); ok {
		if q, qok := e.quarantine[s.Name]; qok {
			// Dropping a quarantined table discards its damaged file; the
			// catalog never knew the table, so skip db execution.
			delete(e.quarantine, s.Name)
			e.cfg.FS.Remove(filepath.Join(e.cfg.Dir, q.file)) //nolint:errcheck
			return &query.Result{Message: fmt.Sprintf("dropped quarantined table %s", s.Name)}, nil
		}
	}
	qr, err := e.db.Exec(sql)
	if err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case query.CreateTable:
		e.dirty[s.Name] = true
	case query.Insert:
		e.dirty[s.Table] = true
	case query.Delete:
		e.dirty[s.Table] = true
	case query.Drop:
		delete(e.dirty, s.Name)
		if tf, ok := e.tables[s.Name]; ok {
			e.retired = e.retired.Add(tf.pool.Stats())
			tf.pager.Close() //nolint:errcheck
			delete(e.tables, s.Name)
			// The snapshot file lingers until the next checkpoint's GC; the
			// WAL's DROP record makes the removal durable in the meantime.
		}
	}
	return qr, nil
}

// checkpointLocked folds the WAL into fresh heap snapshots:
//
//  1. every dirty table's current state is written to a new
//     generation-named heap file and fsync'd (existing snapshots are never
//     touched);
//  2. the manifest is atomically replaced — the commit point;
//  3. a fresh WAL for the new generation is created and the old one,
//     whose records the snapshots now subsume, is deleted with any
//     unreferenced snapshot files.
//
// A crash before step 2 leaves the old manifest + old WAL authoritative; a
// crash after it leaves the new snapshots authoritative with an empty or
// absent WAL. Both replay to the same committed state.
func (e *Engine) checkpointLocked() error {
	if e.cfg.Dir == "" {
		return nil
	}
	if e.broken != nil {
		return e.broken
	}
	if len(e.dirty) == 0 && e.wal.Empty() {
		return nil
	}
	fsys, dir := e.cfg.FS, e.cfg.Dir
	gen := e.gen + 1

	newFiles := map[string]*tableFile{}
	fail := func(err error) error {
		for _, tf := range newFiles {
			tf.pager.Close()     //nolint:errcheck
			fsys.Remove(tf.path) //nolint:errcheck
		}
		return err
	}
	for name := range e.dirty {
		t, ok := e.db.Table(name)
		if !ok {
			continue // created then dropped within one WAL window
		}
		file := fmt.Sprintf("%s.%d%s", name, gen, heapExt)
		path := filepath.Join(dir, file)
		pager, err := storage.CreateFileFS(fsys, path)
		if err != nil {
			return fail(fmt.Errorf("server: checkpoint %s: %w", name, err))
		}
		pool := storage.NewPool(pager, e.cfg.PoolPages)
		tf := &tableFile{file: file, path: path, pager: pager, pool: pool}
		newFiles[name] = tf
		if err := store.SaveTable(t, storage.NewHeap(pool)); err != nil {
			return fail(fmt.Errorf("server: checkpoint %s: %w", name, err))
		}
		if err := pager.Sync(); err != nil {
			return fail(fmt.Errorf("server: checkpoint %s: %w", name, err))
		}
	}
	// Make the new files' directory entries durable before referencing them.
	if err := fsys.SyncDir(dir); err != nil {
		return fail(err)
	}

	m := &manifest{Gen: gen}
	for name, tf := range e.tables {
		if _, rewritten := newFiles[name]; !rewritten {
			m.Tables = append(m.Tables, manifestEntry{Name: name, File: tf.file})
		}
	}
	for name, tf := range newFiles {
		m.Tables = append(m.Tables, manifestEntry{Name: name, File: tf.file})
	}
	for name, q := range e.quarantine {
		m.Tables = append(m.Tables, manifestEntry{Name: name, File: q.file})
	}
	// Planner catalog: every surviving table's current stats and index
	// definitions ride along in the manifest (quarantined tables have none —
	// their planner state was discarded with the catalog entry).
	for _, ent := range m.Tables {
		if ts := e.db.TableStats(ent.Name); ts != nil {
			raw, err := ts.Encode()
			if err != nil {
				return fail(fmt.Errorf("server: checkpoint stats %s: %w", ent.Name, err))
			}
			m.Stats = append(m.Stats, statsEntry{Table: ent.Name, Data: base64.StdEncoding.EncodeToString(raw)})
		}
		cols := make([]string, 0, 2)
		for col := range e.db.IndexedCols(ent.Name) {
			cols = append(cols, col)
		}
		sort.Strings(cols)
		for _, col := range cols {
			m.Indexes = append(m.Indexes, indexEntry{Table: ent.Name, Col: col})
		}
	}
	if err := writeManifest(fsys, dir, m); err != nil {
		return fail(err)
	}

	// Committed. Swap in the new snapshots and the new generation's WAL.
	e.gen = gen
	for name, tf := range newFiles {
		if old, ok := e.tables[name]; ok {
			e.retired = e.retired.Add(old.pool.Stats())
			old.pager.Close() //nolint:errcheck
		}
		e.tables[name] = tf
	}
	e.dirty = map[string]bool{}

	oldWal := e.wal
	nw, err := wal.Create(fsys, filepath.Join(dir, walFile(gen)))
	if err != nil {
		// The manifest already references the new generation; without its
		// WAL no further write can be made durable. Latch read-only.
		e.broken = fmt.Errorf("server: checkpoint committed but WAL creation failed: %w", err)
		return e.broken
	}
	if err := fsys.SyncDir(dir); err != nil {
		nw.Close() //nolint:errcheck
		e.broken = fmt.Errorf("server: checkpoint committed but WAL creation failed: %w", err)
		return e.broken
	}
	e.wal = nw
	if oldWal != nil {
		oldWal.Close() //nolint:errcheck
	}
	e.gcLocked(m)
	return nil
}

// execSelectLocked runs a SELECT against the catalog selectDBLocked picks.
func (e *Engine) execSelectLocked(sql string, s query.SelectStmt) (*query.Result, storage.Stats, exec.CacheStats, error) {
	db, io, cacheFn, err := e.selectDBLocked(s)
	if err != nil {
		return nil, io, cacheFn(), err
	}
	qr, err := db.Exec(sql)
	return qr, io, cacheFn(), err
}

// selectDBLocked picks the catalog a SELECT executes against and prepares
// it. When every referenced table is persisted, the query runs against
// tables scanned cold from their heap files through fresh scratch pools —
// each Result then reports exactly the pages this query touched. Tables
// with WAL-only changes are checkpointed first so the scan sees current
// data. Otherwise the authoritative in-memory catalog serves the query. A
// checksum failure during the scan quarantines the damaged table and fails
// only this query. The returned storage.Stats is the scan I/O already
// incurred; the returned function samples the chosen catalog's scratch
// mass-cache traffic (zero for the authoritative catalog, whose registry
// the caller already tracks). Both executors — materializing Exec and
// streaming ExecStream — share this preparation.
func (e *Engine) selectDBLocked(s query.SelectStmt) (*query.DB, storage.Stats, func() exec.CacheStats, error) {
	noCache := func() exec.CacheStats { return exec.CacheStats{} }
	if e.cfg.Dir == "" {
		return e.db, storage.Stats{}, noCache, nil
	}
	needCkpt, indexed := false, false
	for _, ref := range s.From {
		if q, ok := e.quarantine[ref.Name]; ok {
			return nil, storage.Stats{}, noCache, fmt.Errorf(
				"server: table %q is quarantined after corruption: %v", ref.Name, q.err)
		}
		if e.dirty[ref.Name] {
			needCkpt = true
		}
		if len(e.db.IndexedCols(ref.Name)) > 0 {
			indexed = true
		}
	}
	if indexed {
		// Index access paths live only in the authoritative catalog — a
		// scratch cold-scan would silently plan a full scan. The in-memory
		// state is always current, so no checkpoint is needed; the trade is
		// that such queries report no per-query page I/O.
		return e.db, storage.Stats{}, noCache, nil
	}
	if needCkpt {
		if err := e.checkpointLocked(); err != nil {
			return nil, storage.Stats{}, noCache, fmt.Errorf("server: checkpoint before scan: %w", err)
		}
	}
	if !e.allPersisted(s.From) {
		return e.db, storage.Stats{}, noCache, nil
	}
	scratchDB := query.Open()
	scratchDB.SetParallelism(e.cfg.Parallelism)
	scratchCache := func() exec.CacheStats { return scratchDB.Registry().MassCache().Stats() }
	var io storage.Stats
	for _, ref := range s.From {
		if _, dup := scratchDB.Table(ref.Name); dup {
			continue // same table referenced twice (self-join attempt)
		}
		tf := e.tables[ref.Name]
		// A fresh pool per query = cold scan: the page-read count in the
		// Result frame is this query's own I/O, as in the Fig. 5 runs.
		pool := storage.NewPool(tf.pager, e.cfg.PoolPages)
		t, err := store.LoadTable(storage.NewHeap(pool), scratchDB.Registry())
		if err != nil {
			io = io.Add(pool.Stats())
			if errors.Is(err, storage.ErrCorruptPage) {
				e.quarantineTableLocked(ref.Name, err)
			}
			return nil, io, scratchCache, fmt.Errorf("server: scan %s: %w", ref.Name, err)
		}
		io = io.Add(pool.Stats())
		if err := scratchDB.Attach(t); err != nil {
			return nil, io, scratchCache, err
		}
	}
	return scratchDB, io, scratchCache, nil
}

// quarantineTableLocked takes a table out of service after its heap file
// proved unreadable: the catalog forgets it (queries fail fast with a
// typed message), the file and manifest entry stay for diagnosis, and the
// rest of the server keeps running. Restart re-derives the same quarantine
// from the same corrupt file, so no extra durability work is needed here.
func (e *Engine) quarantineTableLocked(name string, cause error) {
	tf, ok := e.tables[name]
	if !ok {
		return
	}
	e.retired = e.retired.Add(tf.pool.Stats())
	tf.pager.Close() //nolint:errcheck
	delete(e.tables, name)
	delete(e.dirty, name)
	e.quarantine[name] = &quarantined{file: tf.file, err: cause}
	if _, inDB := e.db.Table(name); inDB {
		_, _ = e.db.Exec("DROP TABLE " + name) //nolint:errcheck // catalog detach
	}
	e.cfg.Logf("probserve: quarantined table %q (%s): %v", name, tf.file, cause)
}

func (e *Engine) allPersisted(refs []query.TableRef) bool {
	for _, ref := range refs {
		if _, ok := e.tables[ref.Name]; !ok {
			return false
		}
	}
	return true
}
