// Package server is the network layer over the probabilistic engine: a TCP
// listener speaking the internal/wire protocol, one session goroutine per
// connection, and a bounded worker pool that admits a fixed number of
// concurrently executing queries with queueing and per-query timeouts —
// the missing piece between the paper's embedded engine and a DBMS-shaped
// deployment serving many clients.
package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"probdb/internal/query"
	"probdb/internal/storage"
	"probdb/internal/store"
	"probdb/internal/wire"
)

// heapExt is the filename suffix of one table's heap file in the data dir.
const heapExt = ".heap"

// tableFile is the durability state of one base table: its page file, the
// warm write pool (tail-page appends), and the heap handle over them.
type tableFile struct {
	path  string
	pager *storage.FilePager
	pool  *storage.Pool
	heap  *storage.Heap
}

func (tf *tableFile) close() error {
	if err := tf.pool.Flush(); err != nil {
		tf.pager.Close()
		return err
	}
	if err := tf.pager.Sync(); err != nil {
		tf.pager.Close()
		return err
	}
	return tf.pager.Close()
}

// Engine executes statements for the server: an authoritative in-memory
// catalog (query.DB) with write-through persistence of base tables into
// per-table heap files under a data directory. SELECTs over persisted
// tables are executed against a cold scan of the heap through a scratch
// buffer pool, so every query's Result carries the page-read accounting the
// paper's Fig. 5 is built on — per query, not amortized across a session.
//
// With an empty data dir path the engine is ephemeral: everything runs on
// the in-memory catalog and the I/O counters stay zero.
type Engine struct {
	mu        sync.Mutex
	db        *query.DB
	dir       string
	poolPages int
	tables    map[string]*tableFile
	// retired accumulates the final counters of pools that were closed
	// (DROP, rewrite): the engine-wide I/O sum stays monotone so per-query
	// deltas never underflow.
	retired storage.Stats
}

// OpenEngine creates an engine, loading any tables previously persisted
// under dir (pass "" for an ephemeral engine). poolPages is the buffer-pool
// capacity used for both write-through pools and per-query scan pools.
func OpenEngine(dir string, poolPages int) (*Engine, error) {
	if poolPages < 1 {
		poolPages = 64
	}
	e := &Engine{
		db:        query.Open(),
		dir:       dir,
		poolPages: poolPages,
		tables:    map[string]*tableFile{},
	}
	if dir == "" {
		return e, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: data dir: %w", err)
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*"+heapExt))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	for _, path := range paths {
		tf, err := e.openTableFile(path)
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("server: load %s: %w", path, err)
		}
		t, err := store.LoadTable(tf.heap, e.db.Registry())
		if err != nil {
			tf.close()
			e.Close()
			return nil, fmt.Errorf("server: load %s: %w", path, err)
		}
		want := strings.TrimSuffix(filepath.Base(path), heapExt)
		if t.Name != want {
			tf.close()
			e.Close()
			return nil, fmt.Errorf("server: %s holds table %q, want %q", path, t.Name, want)
		}
		if err := e.db.Attach(t); err != nil {
			tf.close()
			e.Close()
			return nil, err
		}
		e.tables[t.Name] = tf
	}
	return e, nil
}

func (e *Engine) openTableFile(path string) (*tableFile, error) {
	pager, err := storage.OpenFile(path)
	if err != nil {
		return nil, err
	}
	pool := storage.NewPool(pager, e.poolPages)
	return &tableFile{path: path, pager: pager, pool: pool, heap: storage.NewHeap(pool)}, nil
}

// validTableName gates the table-name → filename mapping: the SQL lexer
// only produces identifiers, but defense in depth costs one loop.
func validTableName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// DB exposes the authoritative catalog (for tests).
func (e *Engine) DB() *query.DB { return e.db }

// Close flushes and closes every table file.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var first error
	for name, tf := range e.tables {
		if err := tf.close(); err != nil && first == nil {
			first = err
		}
		delete(e.tables, name)
	}
	return first
}

// Execute runs one statement and packages its outcome, including latency
// and the statement's own buffer-pool traffic, as a wire Result. Statements
// are serialized: the engine below is single-writer and the stats deltas
// must be attributable to exactly one query.
func (e *Engine) Execute(sql string) (*wire.Result, error) {
	stmt, err := query.Parse(sql)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()

	start := time.Now()
	before := e.ioStatsLocked()
	var qr *query.Result
	var scratch storage.Stats
	switch s := stmt.(type) {
	case query.SelectStmt:
		qr, scratch, err = e.execSelectLocked(sql, s)
	case query.CreateTable:
		qr, err = e.execCreateLocked(sql, s)
	case query.Insert:
		qr, err = e.execInsertLocked(sql, s)
	case query.Delete:
		qr, err = e.execRewriteLocked(sql, s.Table)
	case query.Drop:
		qr, err = e.execDropLocked(sql, s)
	default:
		// EXPLAIN, SHOW TABLES, DESCRIBE and anything new run directly on
		// the in-memory catalog.
		qr, err = e.db.Exec(sql)
	}
	if err != nil {
		return nil, err
	}
	delta := e.ioStatsLocked().Sub(before).Add(scratch)

	res := &wire.Result{
		Message:  qr.Message,
		Affected: uint64(qr.Affected),
		Stats: wire.Stats{
			LatencyMicros: uint64(time.Since(start).Microseconds()),
			PageReads:     delta.PageReads,
			PageHits:      delta.Hits,
			PageWrites:    delta.PageWrites,
		},
	}
	if qr.Table != nil {
		res.Table = wire.FromTable(qr.Table)
		res.Stats.Rows = uint64(len(res.Table.Rows))
	}
	return res, nil
}

// ioStatsLocked sums the persistent pools' counters plus every retired
// pool's final reading; the total is monotone non-decreasing.
func (e *Engine) ioStatsLocked() storage.Stats {
	s := e.retired
	for _, tf := range e.tables {
		s = s.Add(tf.pool.Stats())
	}
	return s
}

// retireLocked folds a table file's final counters into the running total
// and closes it.
func (e *Engine) retireLocked(tf *tableFile) error {
	e.retired = e.retired.Add(tf.pool.Stats())
	return tf.close()
}

// execSelectLocked runs a SELECT. When every referenced table is persisted,
// the query executes against tables scanned cold from their heap files
// through fresh scratch pools — each Result then reports exactly the pages
// this query touched. Otherwise it falls back to the in-memory catalog.
func (e *Engine) execSelectLocked(sql string, s query.SelectStmt) (*query.Result, storage.Stats, error) {
	if e.dir == "" || !e.allPersisted(s.From) {
		qr, err := e.db.Exec(sql)
		return qr, storage.Stats{}, err
	}
	scratchDB := query.Open()
	var io storage.Stats
	for _, ref := range s.From {
		if _, dup := scratchDB.Table(ref.Name); dup {
			continue // same table referenced twice (self-join attempt)
		}
		tf := e.tables[ref.Name]
		// A fresh pool per query = cold scan: the page-read count in the
		// Result frame is this query's own I/O, as in the Fig. 5 runs.
		pool := storage.NewPool(tf.pager, e.poolPages)
		t, err := store.LoadTable(storage.NewHeap(pool), scratchDB.Registry())
		if err != nil {
			return nil, io, fmt.Errorf("server: scan %s: %w", ref.Name, err)
		}
		io = io.Add(pool.Stats())
		if err := scratchDB.Attach(t); err != nil {
			return nil, io, err
		}
	}
	qr, err := scratchDB.Exec(sql)
	return qr, io, err
}

func (e *Engine) allPersisted(refs []query.TableRef) bool {
	for _, ref := range refs {
		if _, ok := e.tables[ref.Name]; !ok {
			return false
		}
	}
	return true
}

func (e *Engine) execCreateLocked(sql string, s query.CreateTable) (*query.Result, error) {
	if e.dir != "" && !validTableName(s.Name) {
		return nil, fmt.Errorf("server: table name %q not persistable", s.Name)
	}
	qr, err := e.db.Exec(sql)
	if err != nil || e.dir == "" {
		return qr, err
	}
	t, _ := e.db.Table(s.Name)
	tf, err := e.openTableFile(filepath.Join(e.dir, s.Name+heapExt))
	if err == nil {
		if serr := store.SaveTable(t, tf.heap); serr != nil {
			tf.close() //nolint:errcheck
			os.Remove(tf.path)
			err = serr
		}
	}
	if err != nil {
		// Roll the catalog back so memory and disk stay consistent.
		_, _ = e.db.Exec("DROP TABLE " + s.Name) //nolint:errcheck // best-effort rollback
		return nil, err
	}
	e.tables[s.Name] = tf
	return qr, nil
}

func (e *Engine) execInsertLocked(sql string, s query.Insert) (*query.Result, error) {
	qr, err := e.db.Exec(sql)
	if err != nil || e.dir == "" {
		return qr, err
	}
	tf, ok := e.tables[s.Table]
	if !ok {
		return qr, nil // table predates persistence (should not happen)
	}
	t, _ := e.db.Table(s.Table)
	tuples := t.Tuples()
	if qr.Affected > len(tuples) {
		return nil, fmt.Errorf("server: insert affected %d of %d tuples", qr.Affected, len(tuples))
	}
	if err := store.AppendRows(tf.heap, t, tuples[len(tuples)-qr.Affected:]); err != nil {
		return nil, fmt.Errorf("server: persist insert: %w", err)
	}
	return qr, nil
}

// execRewriteLocked handles statements that mutate existing rows (DELETE):
// the statement runs in memory, then the table's heap file is rewritten
// atomically (write to a temp file, fsync, rename over the old one).
func (e *Engine) execRewriteLocked(sql, table string) (*query.Result, error) {
	qr, err := e.db.Exec(sql)
	if err != nil || e.dir == "" {
		return qr, err
	}
	tf, ok := e.tables[table]
	if !ok {
		return qr, nil
	}
	t, _ := e.db.Table(table)
	tmpPath := tf.path + ".tmp"
	os.Remove(tmpPath) //nolint:errcheck // stale temp from a crash
	tmp, err := e.openTableFile(tmpPath)
	if err != nil {
		return nil, err
	}
	if err := store.SaveTable(t, tmp.heap); err != nil {
		tmp.close() //nolint:errcheck
		os.Remove(tmpPath)
		return nil, fmt.Errorf("server: persist delete: %w", err)
	}
	// The rewrite's page writes are this statement's traffic: retire the
	// temp pool (and the replaced table's pool) into the running total.
	if err := e.retireLocked(tmp); err != nil {
		os.Remove(tmpPath)
		return nil, err
	}
	if err := e.retireLocked(tf); err != nil {
		return nil, err
	}
	if err := os.Rename(tmpPath, tf.path); err != nil {
		return nil, err
	}
	ntf, err := e.openTableFile(tf.path)
	if err != nil {
		return nil, err
	}
	e.tables[table] = ntf
	return qr, nil
}

func (e *Engine) execDropLocked(sql string, s query.Drop) (*query.Result, error) {
	qr, err := e.db.Exec(sql)
	if err != nil || e.dir == "" {
		return qr, err
	}
	if tf, ok := e.tables[s.Name]; ok {
		delete(e.tables, s.Name)
		if err := e.retireLocked(tf); err != nil {
			return nil, err
		}
		if err := os.Remove(tf.path); err != nil {
			return nil, err
		}
	}
	return qr, nil
}
