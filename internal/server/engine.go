// Package server is the network layer over the probabilistic engine: a TCP
// listener speaking the internal/wire protocol, one session goroutine per
// connection, and a bounded worker pool that admits a fixed number of
// concurrently executing queries with queueing and per-query timeouts —
// the missing piece between the paper's embedded engine and a DBMS-shaped
// deployment serving many clients.
package server

import (
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"sync/atomic"

	"probdb/internal/core"
	"probdb/internal/exec"
	"probdb/internal/govern"
	"probdb/internal/plan"
	"probdb/internal/query"
	"probdb/internal/storage"
	"probdb/internal/store"
	"probdb/internal/txn"
	"probdb/internal/vfs"
	"probdb/internal/wal"
	"probdb/internal/wire"
)

// QuarantinedTableError is the typed refusal for any statement — live,
// replayed, or routed — that touches a table quarantined after corruption.
// WAL replay collects these in Engine.ReplayErrors instead of silently
// degrading to a generic catalog miss.
type QuarantinedTableError struct {
	Table string
	Cause error
}

func (e *QuarantinedTableError) Error() string {
	return fmt.Sprintf("server: table %q is quarantined after corruption (%v); DROP it to discard", e.Table, e.Cause)
}

func (e *QuarantinedTableError) Unwrap() error { return e.Cause }

// heapExt is the filename suffix of one table's heap file in the data dir.
const heapExt = ".heap"

// walFile names the write-ahead log belonging to checkpoint generation gen.
// The generation is baked into the name so a log can never be mistaken for
// the tail of a different checkpoint's history: after a crash anywhere in
// the checkpoint protocol, the manifest's generation selects exactly the
// log whose records are not yet folded into the heap snapshots.
func walFile(gen uint64) string { return fmt.Sprintf("wal.%d.log", gen) }

// tableFile is one table's checkpointed snapshot on disk: its heap file,
// the pager over it, and the pool the snapshot was written through. The
// file is immutable while referenced by the manifest; SELECTs cold-scan it
// through per-query scratch pools and checkpoints replace it wholesale.
type tableFile struct {
	file  string // basename within the data dir
	path  string
	pager *storage.FilePager
	pool  *storage.Pool
}

// quarantined is the health record of a table whose heap file failed to
// read — a checksum mismatch or any other load error. The table is removed
// from the catalog but its file and manifest entry are kept (evidence, and
// a possible manual salvage); only DROP TABLE discards it.
type quarantined struct {
	file string
	err  error
}

// EngineConfig tunes an Engine. Zero values take the documented defaults.
type EngineConfig struct {
	// Dir is the data directory; empty means an ephemeral in-memory engine.
	Dir string
	// PoolPages is the buffer-pool capacity used for write-through pools
	// and per-query scan pools. Default 64.
	PoolPages int
	// CheckpointBytes auto-checkpoints when the WAL grows past this many
	// bytes. Default 1 MiB; negative disables auto-checkpointing.
	CheckpointBytes int64
	// Parallelism is the degree of parallelism for operator execution:
	// 0 = one worker per logical CPU, 1 = sequential. Results are identical
	// at every setting.
	Parallelism int
	// FS is the filesystem the persistence path runs on. Default the real
	// OS; tests substitute a fault-injecting implementation.
	FS vfs.FS
	// Budget, when set, is the server-wide memory budget: the mass cache
	// charges its entries against it (and sheds first under pressure), MVCC
	// snapshots charge their frozen tables (and shed second), and query
	// budgets created by the server parent into it. Nil disables
	// accounting entirely — a no-op engine, byte-identical results.
	Budget *govern.Budget
	// ShipWAL retains every WAL generation (checkpoints stop deleting rolled
	// logs) and serves them to replicas through FetchWAL. The replication LSN
	// is a byte offset into the concatenated record streams of generations
	// 0..current, so shipping must be enabled from the data directory's first
	// boot: opening a directory whose older generations were already deleted
	// fails rather than shipping a history with holes.
	ShipWAL bool
	// Logf, when set, receives recovery and checkpoint lifecycle messages.
	Logf func(format string, args ...any)
}

func (c *EngineConfig) fill() {
	if c.PoolPages < 1 {
		c.PoolPages = 64
	}
	if c.CheckpointBytes == 0 {
		c.CheckpointBytes = 1 << 20
	}
	if c.FS == nil {
		c.FS = vfs.OS
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Engine executes statements for the server: an authoritative in-memory
// catalog (query.DB) persisted under a data directory with full crash
// safety. Every mutating statement is appended to a checksummed write-ahead
// log and fsync'd *before* it executes; heap files hold checkpointed
// snapshots and are replaced atomically (fresh generation-named file, then
// an fsync'd manifest rename), never modified in place. Recovery therefore
// reduces to: load the snapshots the manifest names, replay the intact WAL
// records on top, and checkpoint — a restart after a crash at any point
// converges to exactly the committed statements. Heap pages carry CRC32C
// checksums; a corrupt page quarantines its table instead of killing the
// server.
//
// SELECTs over persisted tables are executed against a cold scan of the
// heap through a scratch buffer pool, so every query's Result carries the
// page-read accounting the paper's Fig. 5 is built on — per query, not
// amortized across a session. (A SELECT referencing tables with WAL-only
// changes checkpoints them first, so the scan always sees current data.)
//
// With an empty data dir path the engine is ephemeral: everything runs on
// the in-memory catalog and the I/O counters stay zero.
type Engine struct {
	mu  sync.Mutex
	cfg EngineConfig
	db  *query.DB

	tables     map[string]*tableFile // checkpointed snapshots by table name
	dirty      map[string]bool       // tables whose memory state is ahead of disk
	quarantine map[string]*quarantined
	wal        *wal.Log
	gen        uint64
	// broken latches a checkpoint failure past the commit point (the engine
	// can no longer guarantee write durability); mutations are refused
	// until a restart recovers.
	broken error
	// readOnly is the *declared* read-only mode — an operator- or
	// watchdog-imposed state (disk space below threshold) that, unlike
	// broken, is expected to clear without a restart. Writes are refused
	// with a typed, retryable *ReadOnlyError naming the reason; reads
	// proceed normally.
	readOnly *ReadOnlyError
	// bud is the server-wide memory budget (nil = accounting disabled).
	bud *govern.Budget

	// retired accumulates the final counters of pools that were closed
	// (DROP, checkpoint rewrite): the engine-wide I/O sum stays monotone so
	// per-query deltas never underflow.
	retired storage.Stats

	// execHook, when non-nil (tests), runs at the top of every Execute —
	// the seam fault and panic injection use.
	execHook func(sql string)

	// gc batches WAL appends from concurrent sessions into shared fsyncs
	// (nil on ephemeral engines). Mutations enqueue under e.mu — so log
	// order equals apply order — and wait for durability after releasing it.
	gc *txn.GroupCommitter

	// ver is the per-table commit version: verSeq advances on every
	// committed mutation and stamps the tables it wrote. A transaction
	// records these at BEGIN and COMMIT compares them for the tables it
	// wrote — first-writer-wins conflict detection in O(written tables).
	ver    map[string]uint64
	verSeq uint64
	// nextTxn allocates transaction IDs; recovery seeds it past every ID
	// seen in the replayed log so an unrolled log never collides.
	nextTxn uint64
	// conflicts counts first-writer-wins aborts engine-wide.
	conflicts atomic.Uint64

	// snap is the latest MVCC read snapshot: frozen copy-on-write tables in
	// a catalog readers scan without holding e.mu. It is built lazily (the
	// snapStale flag is cheap to set per mutation; freezing is paid by the
	// first dirty-read after a write) and refcounted under snapMu so a
	// reader mid-scan keeps its snapshot alive across replacement.
	snap      *engineSnap
	snapStale bool
	snapMu    sync.Mutex

	// replayErrs collects the typed per-record errors recovery chose to
	// skip past (e.g. WAL records for quarantined tables).
	replayErrs []error

	// chain lists the rolled (immutable) WAL generations retained for
	// shipping, in generation order; chainBase is the sum of their stream
	// lengths — the LSN at which the current generation's stream begins.
	// Only populated when cfg.ShipWAL is set.
	chain     []shipGen
	chainBase int64

	// sess is the engine-owned default session: Execute/ExecuteStream
	// delegate to it, so tests and embedded callers get BEGIN/COMMIT for
	// free while network connections hold their own Session.
	sess *Session
}

// engineSnap is one published MVCC snapshot: a read-only catalog of frozen
// tables. refs (guarded by the engine's snapMu) counts the engine's own
// reference plus one per in-flight reader; the frozen tables' pinned base
// pdfs are released when it reaches zero.
type engineSnap struct {
	db     *query.DB
	tables []*core.Table
	refs   int
	// charge is what this snapshot reserved against the server budget when
	// built; released when the last reference drops.
	charge int64
}

// OpenEngine creates an engine over cfg.Dir, recovering any previously
// persisted state: manifest snapshots are loaded (damaged tables are
// quarantined, not fatal), the WAL is replayed, and a checkpoint folds the
// replayed tail back into snapshots.
func OpenEngine(cfg EngineConfig) (*Engine, error) {
	cfg.fill()
	e := &Engine{
		cfg:        cfg,
		db:         query.Open(),
		tables:     map[string]*tableFile{},
		dirty:      map[string]bool{},
		quarantine: map[string]*quarantined{},
		ver:        map[string]uint64{},
		nextTxn:    1,
	}
	e.sess = &Session{e: e}
	e.db.SetParallelism(cfg.Parallelism)
	if cfg.Budget != nil {
		e.bud = cfg.Budget
		e.db.Registry().MassCache().SetBudget(e.bud)
		e.db.Registry().ColCache().SetBudget(e.bud)
		// Shed order under server-budget pressure: memoizations first
		// (losing one costs a recomputation), the columnar encodings second
		// (losing one costs a re-encode of a 256-tuple batch), the MVCC
		// snapshot third (rebuilt on the next dirty read). The server layers
		// the most expensive victim — cancelling the largest query — on top.
		e.bud.AddReclaimer(0, func(want int64) int64 {
			return e.db.Registry().MassCache().Shed(want)
		})
		e.bud.AddReclaimer(1, func(want int64) int64 {
			return e.db.Registry().ColCache().Shed(want)
		})
		e.bud.AddReclaimer(2, e.shedSnapshot)
	}
	if cfg.Dir == "" {
		return e, nil
	}
	if err := cfg.FS.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: data dir: %w", err)
	}
	if err := e.recoverLocked(); err != nil {
		e.Abort()
		return nil, err
	}
	return e, nil
}

// recoverLocked brings the engine to the committed state of the data dir.
func (e *Engine) recoverLocked() error {
	fsys, dir := e.cfg.FS, e.cfg.Dir
	m, err := readManifest(fsys, dir)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// No manifest: either a fresh directory or a pre-WAL (v1) layout.
		heaps, gerr := fsys.Glob(filepath.Join(dir, "*"+heapExt))
		if gerr != nil {
			return gerr
		}
		if len(heaps) > 0 {
			return fmt.Errorf("server: %s holds heap files but no MANIFEST: "+
				"the directory predates the write-ahead-log layout; re-import its tables", dir)
		}
		m = &manifest{Gen: 0}
		if werr := writeManifest(fsys, dir, m); werr != nil {
			return werr
		}
	case err != nil:
		return err
	}
	e.gen = m.Gen

	for _, ent := range m.Tables {
		if lerr := e.loadTableLocked(ent); lerr != nil {
			e.quarantine[ent.Name] = &quarantined{file: ent.File, err: lerr}
			e.cfg.Logf("probserve: quarantined table %q (%s): %v", ent.Name, ent.File, lerr)
		}
	}
	e.restorePlannerLocked(m)

	// Open (or create) this generation's WAL and replay its intact records.
	wpath := filepath.Join(dir, walFile(e.gen))
	var recs []wal.Record
	if _, serr := fsys.Stat(wpath); errors.Is(serr, os.ErrNotExist) {
		// A crash after the manifest commit but before the new WAL was
		// created: the snapshots already contain everything.
		if e.wal, err = wal.Create(fsys, wpath); err != nil {
			return err
		}
		if err := fsys.SyncDir(dir); err != nil {
			return err
		}
	} else {
		e.wal, recs, err = wal.Open(fsys, wpath)
		if errors.Is(err, wal.ErrBadMagic) {
			// A crash between the checkpoint's manifest commit and the new
			// WAL's header write (or mid-write) leaves a log whose magic
			// never became durable — and by the WAL's contract such a log
			// holds no committed records. Recreate it empty.
			e.cfg.Logf("probserve: recovery: %v; recreating empty log", err)
			if e.wal, err = wal.Create(fsys, wpath); err != nil {
				return err
			}
			if err = fsys.SyncDir(dir); err != nil {
				return err
			}
		} else if err != nil {
			return err
		}
	}
	e.gc = txn.NewGroupCommitter(e.wal)
	if e.cfg.ShipWAL {
		if err := e.buildShipChainLocked(); err != nil {
			return err
		}
	}

	// Replay. Autocommit records apply immediately; transaction statements
	// buffer by ID and apply only at their commit marker — a transaction
	// whose marker never became durable was never acknowledged, so it is
	// discarded whole (the atomicity half of crash recovery).
	replayed := 0
	apply := func(sql string) {
		stmt, perr := query.Parse(sql)
		if perr != nil {
			e.cfg.Logf("probserve: recovery: unparseable WAL statement %q: %v", sql, perr)
			return
		}
		if qerr := e.precheckLocked(stmt); qerr != nil {
			var qe *QuarantinedTableError
			if errors.As(qerr, &qe) {
				e.replayErrs = append(e.replayErrs, qe)
			}
			e.cfg.Logf("probserve: recovery: skipping WAL statement %q: %v", sql, qerr)
			return
		}
		if _, aerr := e.applyLocked(sql, stmt); aerr != nil {
			// A statement that failed when first executed fails identically
			// here; either way the catalog matches the pre-crash state.
			e.cfg.Logf("probserve: recovery: replayed statement failed (as it may have originally): %v", aerr)
		}
	}
	pending := map[uint64][]string{}
	var maxTxn uint64
	for _, r := range recs {
		switch r.Type {
		case wal.TypeStatement:
			apply(string(r.Data))
			replayed++
		case wal.TypeTxnStmt:
			id, sql, derr := wal.DecodeTxn(r.Data)
			if derr != nil {
				e.cfg.Logf("probserve: recovery: %v", derr)
				continue
			}
			if id > maxTxn {
				maxTxn = id
			}
			pending[id] = append(pending[id], sql)
		case wal.TypeTxnCommit:
			id, _, derr := wal.DecodeTxn(r.Data)
			if derr != nil {
				e.cfg.Logf("probserve: recovery: %v", derr)
				continue
			}
			if id > maxTxn {
				maxTxn = id
			}
			for _, sql := range pending[id] {
				apply(sql)
				replayed++
			}
			delete(pending, id)
		default:
			e.cfg.Logf("probserve: recovery: skipping unknown WAL record type %d", r.Type)
		}
	}
	if len(pending) > 0 {
		e.cfg.Logf("probserve: recovery: discarded %d uncommitted transaction(s)", len(pending))
	}
	e.nextTxn = maxTxn + 1
	e.gcLocked(m)
	if replayed > 0 || len(e.dirty) > 0 {
		e.cfg.Logf("probserve: recovery: replayed %d WAL statement(s) at generation %d", replayed, e.gen)
		if cerr := e.checkpointLocked(); cerr != nil {
			// Not fatal: the WAL still holds the tail durably.
			e.cfg.Logf("probserve: recovery checkpoint failed: %v", cerr)
		}
	}
	return nil
}

// restorePlannerLocked reinstalls the planner catalog the manifest recorded
// at the last checkpoint: statistics decode straight back, index definitions
// rebuild their structures from the reloaded tables. Runs before WAL replay
// so replayed DML maintains the indexes incrementally, exactly as the live
// execution did. Every failure degrades — the table plans as an unanalyzed,
// unindexed full scan — because a planner without state is merely slower,
// never wrong.
func (e *Engine) restorePlannerLocked(m *manifest) {
	for _, se := range m.Stats {
		if _, ok := e.db.Table(se.Table); !ok {
			continue // quarantined or vanished: stats die with the table
		}
		raw, err := base64.StdEncoding.DecodeString(se.Data)
		if err == nil {
			var ts *plan.TableStats
			if ts, err = plan.DecodeStats(raw); err == nil {
				e.db.InstallStats(se.Table, ts)
				continue
			}
		}
		e.cfg.Logf("probserve: recovery: dropping stats for %q (re-run ANALYZE): %v", se.Table, err)
	}
	for _, ie := range m.Indexes {
		if _, ok := e.db.Table(ie.Table); !ok {
			continue
		}
		if _, err := e.db.Exec(fmt.Sprintf("CREATE INDEX ON %s (%s)", ie.Table, ie.Col)); err != nil {
			e.cfg.Logf("probserve: recovery: dropping index on %s(%s) (re-run CREATE INDEX): %v",
				ie.Table, ie.Col, err)
		}
	}
}

// loadTableLocked opens one manifest entry's snapshot and attaches it.
func (e *Engine) loadTableLocked(ent manifestEntry) error {
	path := filepath.Join(e.cfg.Dir, ent.File)
	pager, err := storage.OpenFileFS(e.cfg.FS, path)
	if err != nil {
		return err
	}
	pool := storage.NewPool(pager, e.cfg.PoolPages)
	t, err := store.LoadTable(storage.NewHeap(pool), e.db.Registry())
	if err != nil {
		pager.Close()
		return err
	}
	if t.Name != ent.Name {
		pager.Close()
		return fmt.Errorf("server: %s holds table %q, want %q", path, t.Name, ent.Name)
	}
	if err := e.db.Attach(t); err != nil {
		pager.Close()
		return err
	}
	e.retired = e.retired.Add(pool.Stats())
	pool.ResetStats()
	e.tables[ent.Name] = &tableFile{file: ent.File, path: path, pager: pager, pool: pool}
	return nil
}

// gcLocked removes files the manifest does not reference: snapshots and
// logs left behind by a crashed checkpoint, and stale manifest temp files.
// Best-effort — a leftover file is wasted space, never incorrectness.
func (e *Engine) gcLocked(m *manifest) {
	fsys, dir := e.cfg.FS, e.cfg.Dir
	live := m.files()
	if heaps, err := fsys.Glob(filepath.Join(dir, "*"+heapExt)); err == nil {
		for _, p := range heaps {
			if !live[filepath.Base(p)] {
				fsys.Remove(p) //nolint:errcheck
			}
		}
	}
	// With shipping enabled every rolled generation is part of the LSN
	// space a replica may still be behind in, so none may be deleted.
	if !e.cfg.ShipWAL {
		cur := walFile(e.gen)
		if logs, err := fsys.Glob(filepath.Join(dir, "wal.*.log")); err == nil {
			for _, p := range logs {
				if filepath.Base(p) != cur {
					fsys.Remove(p) //nolint:errcheck
				}
			}
		}
	}
	fsys.Remove(filepath.Join(dir, manifestName+".tmp")) //nolint:errcheck
}

// validTableName gates the table-name → filename mapping: the SQL lexer
// only produces identifiers, but defense in depth costs one loop.
func validTableName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// DB exposes the authoritative catalog (for tests).
func (e *Engine) DB() *query.DB { return e.db }

// Quarantined returns the tables currently quarantined after corruption,
// keyed by name.
func (e *Engine) Quarantined() map[string]error {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]error, len(e.quarantine))
	for name, q := range e.quarantine {
		out[name] = q.err
	}
	return out
}

// Close checkpoints (folding any WAL tail into snapshots) and closes every
// file. After a clean Close the WAL is empty and restart replays nothing.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var first error
	if e.cfg.Dir != "" && e.broken == nil {
		first = e.checkpointLocked()
	}
	e.closeFilesLocked()
	return first
}

// Abort closes every file handle without flushing or checkpointing — the
// crash path, used by recovery tests and failed opens. State on disk stays
// exactly as the last completed I/O left it.
func (e *Engine) Abort() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closeFilesLocked()
}

func (e *Engine) closeFilesLocked() {
	for name, tf := range e.tables {
		tf.pager.Close() //nolint:errcheck
		delete(e.tables, name)
	}
	if e.wal != nil {
		e.wal.Close() //nolint:errcheck
		e.wal = nil
	}
	if e.broken == nil {
		e.broken = errors.New("server: engine closed")
	}
}

// isCheckpointSQL recognizes the engine-level CHECKPOINT command (not part
// of the query language: it has no effect on the catalog).
func isCheckpointSQL(sql string) bool {
	s := strings.TrimSpace(sql)
	s = strings.TrimSuffix(s, ";")
	return strings.EqualFold(strings.TrimSpace(s), "CHECKPOINT")
}

// Execute runs one statement on the engine's default session and packages
// its outcome, including latency, buffer-pool traffic, and WAL bytes, as a
// wire Result. Network connections each hold their own Session (giving them
// independent transactions); Execute exists for tests and embedded callers.
func (e *Engine) Execute(sql string) (*wire.Result, error) {
	return e.sess.Execute(sql)
}

// ExecuteStream runs one statement on the engine's default session like
// Execute, but streams a plain SELECT's result batches to sink as the
// operator tree produces them. See Session.ExecuteStream.
func (e *Engine) ExecuteStream(ctx context.Context, sql string, sink func(hdr *core.Table, batch []*core.Tuple) error) (*wire.Result, bool, error) {
	return e.sess.ExecuteStream(ctx, sql, sink)
}

// attachTable copies a query result's relation into the wire Result.
func attachTable(res *wire.Result, qr *query.Result) {
	if qr.Table != nil {
		res.Table = wire.FromTable(qr.Table)
		res.Stats.Rows = uint64(len(res.Table.Rows))
	}
}

// execParsed is the autocommit statement path (no open transaction).
func (e *Engine) execParsed(sql string, stmt query.Stmt) (*wire.Result, error) {
	switch s := stmt.(type) {
	case query.SelectStmt:
		return e.execSelect(sql, s)
	case query.CreateTable, query.Insert, query.Delete, query.Drop,
		query.Analyze, query.CreateIndex:
		// ANALYZE and CREATE INDEX mutate the planner catalog (stats,
		// index definitions); WAL-logging them makes that state as
		// durable as the data, with the manifest carrying it across
		// checkpoints.
		return e.execMutation(sql, stmt)
	default:
		// EXPLAIN, SHOW TABLES, DESCRIBE and anything new run directly
		// on the in-memory catalog.
		e.mu.Lock()
		defer e.mu.Unlock()
		d := e.beginStatsLocked()
		qr, err := e.db.Exec(sql)
		if err != nil {
			return nil, err
		}
		res := e.finishStatsLocked(d, qr, storage.Stats{}, exec.CacheStats{})
		attachTable(res, qr)
		return res, nil
	}
}

// execCheckpoint runs the engine-level CHECKPOINT command.
func (e *Engine) execCheckpoint() (*wire.Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	d := e.beginStatsLocked()
	if err := e.checkpointLocked(); err != nil {
		return nil, err
	}
	qr := &query.Result{Message: fmt.Sprintf("checkpoint complete (generation %d)", e.gen)}
	return e.finishStatsLocked(d, qr, storage.Stats{}, exec.CacheStats{}), nil
}

// execMutation is the autocommit write path. Under e.mu the statement is
// enqueued for group commit and applied to the catalog — enqueue order is
// apply order, so the log and memory always agree on history — and the new
// state becomes visible to other statements immediately. The client is
// acked only after the statement's ticket reports its records durable; if
// the flush fails, memory is ahead of the log and the engine latches
// read-only until a restart recovers.
func (e *Engine) execMutation(sql string, stmt query.Stmt) (*wire.Result, error) {
	e.mu.Lock()
	d := e.beginStatsLocked()
	if e.readOnly != nil {
		err := e.readOnly
		e.mu.Unlock()
		return nil, err
	}
	if e.cfg.Dir == "" {
		defer e.mu.Unlock()
		qr, err := e.applyEphemeralLocked(sql, stmt)
		if err != nil {
			return nil, err
		}
		e.bumpVersionLocked(stmt)
		res := e.finishStatsLocked(d, qr, storage.Stats{}, exec.CacheStats{})
		attachTable(res, qr)
		return res, nil
	}
	if e.broken != nil {
		err := fmt.Errorf("server: engine is read-only after a durability failure: %w", e.broken)
		e.mu.Unlock()
		return nil, err
	}
	if err := e.precheckLocked(stmt); err != nil {
		e.mu.Unlock()
		return nil, err
	}
	tk := e.gc.Enqueue([]wal.Record{{Type: wal.TypeStatement, Data: []byte(sql)}})
	qr, aerr := e.applyLocked(sql, stmt)
	var res *wire.Result
	if aerr == nil {
		e.bumpVersionLocked(stmt)
		e.maybeCheckpointLocked()
		res = e.finishStatsLocked(d, qr, storage.Stats{}, exec.CacheStats{})
	}
	e.mu.Unlock()

	ack, werr := tk.Wait()
	if aerr != nil {
		// The WAL record stays: replay re-executes the statement against
		// the same state and fails identically, so disk and memory agree.
		return nil, aerr
	}
	if werr != nil {
		e.latchBroken(werr)
		return nil, fmt.Errorf("server: statement not durable: %w", werr)
	}
	res.Stats.LatencyMicros = uint64(time.Since(d.start).Microseconds())
	if ack.Led {
		res.Stats.WALFsyncs = 1
	}
	res.Stats.WALGroupSize = uint64(ack.GroupSize)
	attachTable(res, qr)
	return res, nil
}

// latchBroken marks the engine read-only after a WAL flush failure: the
// in-memory catalog may be ahead of the durable log, so no further write
// can be ordered safely. Restart recovers to the durable prefix.
func (e *Engine) latchBroken(err error) {
	e.mu.Lock()
	if e.broken == nil {
		e.broken = fmt.Errorf("server: WAL flush failed (memory may be ahead of the log): %w", err)
		e.cfg.Logf("probserve: %v", e.broken)
	}
	e.mu.Unlock()
}

// writtenTables names the tables a mutation statement writes.
func (e *Engine) writtenTablesLocked(stmt query.Stmt) []string {
	switch s := stmt.(type) {
	case query.CreateTable:
		return []string{s.Name}
	case query.Insert:
		return []string{s.Table}
	case query.Delete:
		return []string{s.Table}
	case query.Drop:
		return []string{s.Name}
	case query.CreateIndex:
		return []string{s.Table}
	case query.Analyze:
		if s.Table != "" {
			return []string{s.Table}
		}
		return e.db.TableNames()
	}
	return nil
}

// bumpVersionLocked advances the commit clock, stamps the tables stmt
// wrote, and invalidates the MVCC read snapshot.
func (e *Engine) bumpVersionLocked(stmt query.Stmt) {
	names := e.writtenTablesLocked(stmt)
	e.verSeq++
	for _, n := range names {
		e.ver[n] = e.verSeq
	}
	e.snapStale = true
}

// maybeCheckpointLocked auto-checkpoints once the WAL (durable plus
// enqueued) passes the configured threshold.
func (e *Engine) maybeCheckpointLocked() {
	if e.cfg.CheckpointBytes > 0 && e.gc.Size() >= e.cfg.CheckpointBytes {
		if cerr := e.checkpointLocked(); cerr != nil {
			// The statement itself is (or will be) durable in the WAL;
			// surface the checkpoint failure to the log, not the client.
			e.cfg.Logf("probserve: auto-checkpoint failed: %v", cerr)
		}
	}
}

// execSelect runs an autocommit SELECT. Snapshot-routed queries (dirty
// tables) release e.mu before executing: readers scan frozen tables while
// writers proceed.
func (e *Engine) execSelect(sql string, s query.SelectStmt) (*wire.Result, error) {
	e.mu.Lock()
	d := e.beginStatsLocked()
	db, io, cacheFn, snap, err := e.selectDBLocked(s)
	if err != nil {
		e.mu.Unlock()
		return nil, err
	}
	if snap == nil {
		defer e.mu.Unlock()
		qr, qerr := db.Exec(sql)
		if qerr != nil {
			return nil, qerr
		}
		res := e.finishStatsLocked(d, qr, io, cacheFn())
		attachTable(res, qr)
		return res, nil
	}
	e.mu.Unlock()
	qr, qerr := db.Exec(sql)
	e.releaseSnap(snap)
	if qerr != nil {
		return nil, qerr
	}
	e.mu.Lock()
	res := e.finishStatsLocked(d, qr, io, cacheFn())
	e.mu.Unlock()
	attachTable(res, qr)
	return res, nil
}

// execSelectStream runs an autocommit streaming SELECT. For snapshot-routed
// queries the engine lock is released for the whole scan — the sink (and a
// slow client behind it) no longer blocks writers.
func (e *Engine) execSelectStream(ctx context.Context, sql string, s query.SelectStmt, sink func(hdr *core.Table, batch []*core.Tuple) error) (*wire.Result, bool, error) {
	e.mu.Lock()
	d := e.beginStatsLocked()
	db, io, cacheFn, snap, err := e.selectDBLocked(s)
	if err != nil {
		e.mu.Unlock()
		return nil, true, err
	}
	if snap == nil {
		defer e.mu.Unlock()
		qr, qerr := db.ExecStream(ctx, sql, sink)
		if qerr != nil {
			return nil, true, qerr
		}
		res := e.finishStatsLocked(d, qr, io, cacheFn())
		res.Stats.Rows = uint64(qr.Affected)
		return res, true, nil
	}
	e.mu.Unlock()
	qr, qerr := db.ExecStream(ctx, sql, sink)
	e.releaseSnap(snap)
	if qerr != nil {
		return nil, true, qerr
	}
	e.mu.Lock()
	res := e.finishStatsLocked(d, qr, io, cacheFn())
	e.mu.Unlock()
	res.Stats.Rows = uint64(qr.Affected)
	return res, true, nil
}

// statMarks snapshots the engine counters at statement start; the matching
// finishStatsLocked turns them into the per-statement deltas of the Result.
type statMarks struct {
	start     time.Time
	io        storage.Stats
	wal       int64
	cache     exec.CacheStats
	conflicts uint64
}

func (e *Engine) beginStatsLocked() statMarks {
	return statMarks{
		start:     time.Now(),
		io:        e.ioStatsLocked(),
		wal:       e.walSizeLocked(),
		cache:     e.db.Registry().MassCache().Stats(),
		conflicts: e.conflicts.Load(),
	}
}

// finishStatsLocked packages a finished statement's outcome and stat deltas
// as a wire Result (without the table — callers attach rows or row counts).
func (e *Engine) finishStatsLocked(d statMarks, qr *query.Result, scratch storage.Stats, scratchCache exec.CacheStats) *wire.Result {
	delta := e.ioStatsLocked().Sub(d.io).Add(scratch)
	// Mass-cache traffic: the catalog registry's delta plus whatever a
	// scratch scan's own registry accumulated before being discarded.
	cacheDelta := e.db.Registry().MassCache().Stats().Sub(d.cache).Add(scratchCache)
	// A checkpoint during the statement rolls the WAL and shrinks it below
	// the starting size; clamp so the per-statement delta never underflows.
	walDelta := e.walSizeLocked() - d.wal
	if walDelta < 0 {
		walDelta = 0
	}
	return &wire.Result{
		Message:  qr.Message,
		Affected: uint64(qr.Affected),
		Stats: wire.Stats{
			LatencyMicros:    uint64(time.Since(d.start).Microseconds()),
			PageReads:        delta.PageReads,
			PageHits:         delta.Hits,
			PageWrites:       delta.PageWrites,
			WALBytes:         uint64(walDelta),
			MassCacheHits:    cacheDelta.Hits,
			MassCacheMiss:    cacheDelta.Misses,
			IndexProbes:      qr.Planner.IndexProbes,
			IndexPruned:      qr.Planner.IndexPruned,
			PlannerFallbacks: qr.Planner.PlannerFallbacks,
			TxnConflicts:     e.conflicts.Load() - d.conflicts,
			VecTuples:        qr.Planner.VecTuples,
			ScalarTuples:     qr.Planner.ScalarTuples,
		},
	}
}

// walSizeLocked returns the WAL's current size — durable plus enqueued
// bytes, monotone within one generation (a checkpoint rolls the log and
// resets it). The group committer tracks it so an in-flight flush on
// another session never races this read.
func (e *Engine) walSizeLocked() int64 {
	if e.gc == nil {
		return 0
	}
	return e.gc.Size()
}

// ioStatsLocked sums the persistent pools' counters plus every retired
// pool's final reading; the total is monotone non-decreasing.
func (e *Engine) ioStatsLocked() storage.Stats {
	s := e.retired
	for _, tf := range e.tables {
		s = s.Add(tf.pool.Stats())
	}
	return s
}

// applyEphemeralLocked runs a mutation on a diskless engine.
func (e *Engine) applyEphemeralLocked(sql string, stmt query.Stmt) (*query.Result, error) {
	_ = stmt
	return e.db.Exec(sql)
}

// precheckLocked rejects statements that must not reach the WAL: writes
// against quarantined tables (their disk state is unknown) and table names
// that cannot map to a heap file.
func (e *Engine) precheckLocked(stmt query.Stmt) error {
	quarantineErr := func(name string) error {
		if q, ok := e.quarantine[name]; ok {
			return &QuarantinedTableError{Table: name, Cause: q.err}
		}
		return nil
	}
	switch s := stmt.(type) {
	case query.CreateTable:
		if !validTableName(s.Name) {
			return fmt.Errorf("server: table name %q not persistable", s.Name)
		}
		return quarantineErr(s.Name)
	case query.Insert:
		return quarantineErr(s.Table)
	case query.Delete:
		return quarantineErr(s.Table)
	case query.Analyze:
		if s.Table != "" {
			return quarantineErr(s.Table)
		}
	case query.CreateIndex:
		return quarantineErr(s.Table)
	}
	return nil
}

// applyLocked executes an already-logged mutation against the catalog and
// updates the engine's dirty-table bookkeeping. It is the single code path
// shared by live execution and recovery replay, so both walk identical
// state transitions.
func (e *Engine) applyLocked(sql string, stmt query.Stmt) (*query.Result, error) {
	if s, ok := stmt.(query.Drop); ok {
		if q, qok := e.quarantine[s.Name]; qok {
			// Dropping a quarantined table discards its damaged file; the
			// catalog never knew the table, so skip db execution.
			delete(e.quarantine, s.Name)
			e.cfg.FS.Remove(filepath.Join(e.cfg.Dir, q.file)) //nolint:errcheck
			return &query.Result{Message: fmt.Sprintf("dropped quarantined table %s", s.Name)}, nil
		}
	}
	qr, err := e.db.Exec(sql)
	if err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case query.CreateTable:
		e.dirty[s.Name] = true
	case query.Insert:
		e.dirty[s.Table] = true
	case query.Delete:
		e.dirty[s.Table] = true
	case query.Drop:
		delete(e.dirty, s.Name)
		if tf, ok := e.tables[s.Name]; ok {
			e.retired = e.retired.Add(tf.pool.Stats())
			tf.pager.Close() //nolint:errcheck
			delete(e.tables, s.Name)
			// The snapshot file lingers until the next checkpoint's GC; the
			// WAL's DROP record makes the removal durable in the meantime.
		}
	}
	return qr, nil
}

// checkpointLocked folds the WAL into fresh heap snapshots:
//
//  1. every dirty table's current state is written to a new
//     generation-named heap file and fsync'd (existing snapshots are never
//     touched);
//  2. the manifest is atomically replaced — the commit point;
//  3. a fresh WAL for the new generation is created and the old one,
//     whose records the snapshots now subsume, is deleted with any
//     unreferenced snapshot files.
//
// A crash before step 2 leaves the old manifest + old WAL authoritative; a
// crash after it leaves the new snapshots authoritative with an empty or
// absent WAL. Both replay to the same committed state.
func (e *Engine) checkpointLocked() error {
	if e.cfg.Dir == "" {
		return nil
	}
	if e.broken != nil {
		return e.broken
	}
	// Drain the group-commit queue first: every enqueued record must be in
	// the old log before it is folded away and rolled (their sessions may
	// still be in Wait — the flush completes their tickets). After Flush no
	// writer touches e.wal, because Enqueue requires e.mu.
	if e.gc != nil {
		if err := e.gc.Flush(); err != nil {
			return fmt.Errorf("server: checkpoint: WAL flush: %w", err)
		}
	}
	if len(e.dirty) == 0 && e.wal.Empty() {
		return nil
	}
	fsys, dir := e.cfg.FS, e.cfg.Dir
	gen := e.gen + 1

	newFiles := map[string]*tableFile{}
	fail := func(err error) error {
		for _, tf := range newFiles {
			tf.pager.Close()     //nolint:errcheck
			fsys.Remove(tf.path) //nolint:errcheck
		}
		return err
	}
	for name := range e.dirty {
		t, ok := e.db.Table(name)
		if !ok {
			continue // created then dropped within one WAL window
		}
		file := fmt.Sprintf("%s.%d%s", name, gen, heapExt)
		path := filepath.Join(dir, file)
		pager, err := storage.CreateFileFS(fsys, path)
		if err != nil {
			return fail(fmt.Errorf("server: checkpoint %s: %w", name, err))
		}
		pool := storage.NewPool(pager, e.cfg.PoolPages)
		tf := &tableFile{file: file, path: path, pager: pager, pool: pool}
		newFiles[name] = tf
		if err := store.SaveTable(t, storage.NewHeap(pool)); err != nil {
			return fail(fmt.Errorf("server: checkpoint %s: %w", name, err))
		}
		if err := pager.Sync(); err != nil {
			return fail(fmt.Errorf("server: checkpoint %s: %w", name, err))
		}
	}
	// Make the new files' directory entries durable before referencing them.
	if err := fsys.SyncDir(dir); err != nil {
		return fail(err)
	}

	m := &manifest{Gen: gen}
	for name, tf := range e.tables {
		if _, rewritten := newFiles[name]; !rewritten {
			m.Tables = append(m.Tables, manifestEntry{Name: name, File: tf.file})
		}
	}
	for name, tf := range newFiles {
		m.Tables = append(m.Tables, manifestEntry{Name: name, File: tf.file})
	}
	for name, q := range e.quarantine {
		m.Tables = append(m.Tables, manifestEntry{Name: name, File: q.file})
	}
	// Planner catalog: every surviving table's current stats and index
	// definitions ride along in the manifest (quarantined tables have none —
	// their planner state was discarded with the catalog entry).
	for _, ent := range m.Tables {
		if ts := e.db.TableStats(ent.Name); ts != nil {
			raw, err := ts.Encode()
			if err != nil {
				return fail(fmt.Errorf("server: checkpoint stats %s: %w", ent.Name, err))
			}
			m.Stats = append(m.Stats, statsEntry{Table: ent.Name, Data: base64.StdEncoding.EncodeToString(raw)})
		}
		cols := make([]string, 0, 2)
		for col := range e.db.IndexedCols(ent.Name) {
			cols = append(cols, col)
		}
		sort.Strings(cols)
		for _, col := range cols {
			m.Indexes = append(m.Indexes, indexEntry{Table: ent.Name, Col: col})
		}
	}
	if err := writeManifest(fsys, dir, m); err != nil {
		return fail(err)
	}

	// Committed. Swap in the new snapshots and the new generation's WAL.
	e.gen = gen
	for name, tf := range newFiles {
		if old, ok := e.tables[name]; ok {
			e.retired = e.retired.Add(old.pool.Stats())
			old.pager.Close() //nolint:errcheck
		}
		e.tables[name] = tf
	}
	e.dirty = map[string]bool{}

	oldWal := e.wal
	nw, err := wal.Create(fsys, filepath.Join(dir, walFile(gen)))
	if err != nil {
		// The manifest already references the new generation; without its
		// WAL no further write can be made durable. Latch read-only.
		e.broken = fmt.Errorf("server: checkpoint committed but WAL creation failed: %w", err)
		return e.broken
	}
	if err := fsys.SyncDir(dir); err != nil {
		nw.Close() //nolint:errcheck
		e.broken = fmt.Errorf("server: checkpoint committed but WAL creation failed: %w", err)
		return e.broken
	}
	e.wal = nw
	if e.gc != nil {
		e.gc.SetLog(nw)
	}
	if oldWal != nil {
		if e.cfg.ShipWAL {
			// The just-rolled generation is drained (Flush above) and will
			// never be appended to again: freeze its stream length into the
			// shipping chain before the new generation starts at chainBase.
			g := shipGen{path: oldWal.Path(), size: oldWal.StreamLen()}
			e.chain = append(e.chain, g)
			e.chainBase += g.size
		}
		oldWal.Close() //nolint:errcheck
	}
	e.gcLocked(m)
	return nil
}

// snapshotLocked returns the current MVCC read snapshot with one reader
// reference added, rebuilding it first if mutations invalidated it.
// Freezing is a shallow per-table copy plus one registry pass that pins the
// tuples' base pdfs; the caller scans without e.mu and must releaseSnap.
func (e *Engine) snapshotLocked() *engineSnap {
	if e.snap == nil || e.snapStale {
		sdb := query.OpenWith(e.db.Registry())
		sdb.SetParallelism(e.cfg.Parallelism)
		var frozen []*core.Table
		for _, name := range e.db.TableNames() {
			t, ok := e.db.Table(name)
			if !ok {
				continue
			}
			ft := t.Freeze()
			frozen = append(frozen, ft)
			sdb.Attach(ft) //nolint:errcheck // names are unique by construction
		}
		ns := &engineSnap{db: sdb, tables: frozen, refs: 1}
		for _, ft := range frozen {
			ns.charge += ft.MemEstimate()
		}
		// Charge the frozen working set against the server budget. The
		// snapshot is mandatory for correctness (a dirty read has nowhere
		// else to go), so a refusal — after Reserve has already shed the
		// cheaper victims — degrades to an untracked snapshot with a log
		// line rather than failing reads.
		if err := e.bud.Reserve(ns.charge); err != nil {
			e.cfg.Logf("probserve: snapshot uncharged under memory pressure: %v", err)
			ns.charge = 0
		}
		e.snapMu.Lock()
		old := e.snap
		e.snap = ns
		e.snapMu.Unlock()
		e.snapStale = false
		if old != nil {
			e.releaseSnap(old) // drop the engine's reference to the old snapshot
		}
	}
	s := e.snap
	e.snapMu.Lock()
	s.refs++
	e.snapMu.Unlock()
	return s
}

// releaseSnap drops one reference; the last one unpins the frozen tables'
// base pdfs from the registry.
func (e *Engine) releaseSnap(s *engineSnap) {
	e.snapMu.Lock()
	s.refs--
	drop := s.refs == 0
	e.snapMu.Unlock()
	if drop {
		for _, t := range s.tables {
			t.ReleaseFrozen()
		}
		e.bud.Release(s.charge)
	}
}

// shedSnapshot is the priority-2 budget reclaimer: it drops the engine's
// own reference to the current MVCC snapshot so its frozen tables (and
// their budget charge) free as soon as in-flight readers finish. The next
// dirty read rebuilds a snapshot — correctness is unaffected. TryLock
// avoids self-deadlock: Reserve can run under e.mu (snapshotLocked itself
// charges), and a reclaimer that blocked there would wedge the engine.
func (e *Engine) shedSnapshot(want int64) int64 {
	_ = want // all-or-nothing: one snapshot, one drop
	if !e.mu.TryLock() {
		return 0
	}
	defer e.mu.Unlock()
	if e.snap == nil {
		return 0
	}
	old := e.snap
	e.snap = nil
	e.snapStale = true
	freed := old.charge
	e.releaseSnap(old)
	return freed
}

// selectDBLocked picks the catalog a SELECT executes against and prepares
// it:
//
//   - a quarantined table fails the query with the typed error;
//   - a table with an index routes to the authoritative catalog under e.mu
//     (index structures exist only there; the trade is no per-query page
//     I/O accounting);
//   - a table with WAL-only changes routes to the MVCC snapshot: the query
//     scans frozen copy-on-write tables with e.mu released, so writers
//     never wait on readers (the returned *engineSnap is non-nil; the
//     caller must releaseSnap when done);
//   - otherwise every referenced table is clean and persisted, and the
//     query cold-scans the heap files through fresh scratch pools so its
//     Result reports exactly the pages it touched — the Fig. 5 accounting.
//
// A checksum failure during the cold scan quarantines the damaged table and
// fails only this query. The returned storage.Stats is scan I/O already
// incurred; the returned function samples scratch mass-cache traffic (zero
// for catalogs sharing the authoritative registry, which the caller already
// tracks). Both executors — materializing Exec and streaming ExecStream —
// share this preparation.
func (e *Engine) selectDBLocked(s query.SelectStmt) (*query.DB, storage.Stats, func() exec.CacheStats, *engineSnap, error) {
	noCache := func() exec.CacheStats { return exec.CacheStats{} }
	if e.cfg.Dir == "" {
		return e.db, storage.Stats{}, noCache, nil, nil
	}
	anyDirty, indexed := false, false
	for _, ref := range s.From {
		if q, ok := e.quarantine[ref.Name]; ok {
			return nil, storage.Stats{}, noCache, nil, &QuarantinedTableError{Table: ref.Name, Cause: q.err}
		}
		if e.dirty[ref.Name] {
			anyDirty = true
		}
		if len(e.db.IndexedCols(ref.Name)) > 0 {
			indexed = true
		}
	}
	if indexed {
		// Index access paths live only in the authoritative catalog — a
		// snapshot or scratch scan would silently plan a full scan. The
		// in-memory state is always current.
		return e.db, storage.Stats{}, noCache, nil, nil
	}
	if anyDirty {
		snap := e.snapshotLocked()
		return snap.db, storage.Stats{}, noCache, snap, nil
	}
	if !e.allPersisted(s.From) {
		return e.db, storage.Stats{}, noCache, nil, nil
	}
	scratchDB := query.Open()
	scratchDB.SetParallelism(e.cfg.Parallelism)
	scratchCache := func() exec.CacheStats { return scratchDB.Registry().MassCache().Stats() }
	var io storage.Stats
	for _, ref := range s.From {
		if _, dup := scratchDB.Table(ref.Name); dup {
			continue // same table referenced twice (self-join attempt)
		}
		tf := e.tables[ref.Name]
		// A fresh pool per query = cold scan: the page-read count in the
		// Result frame is this query's own I/O, as in the Fig. 5 runs.
		pool := storage.NewPool(tf.pager, e.cfg.PoolPages)
		t, err := store.LoadTable(storage.NewHeap(pool), scratchDB.Registry())
		if err != nil {
			io = io.Add(pool.Stats())
			if errors.Is(err, storage.ErrCorruptPage) {
				e.quarantineTableLocked(ref.Name, err)
			}
			return nil, io, scratchCache, nil, fmt.Errorf("server: scan %s: %w", ref.Name, err)
		}
		io = io.Add(pool.Stats())
		if err := scratchDB.Attach(t); err != nil {
			return nil, io, scratchCache, nil, err
		}
	}
	return scratchDB, io, scratchCache, nil, nil
}

// quarantineTableLocked takes a table out of service after its heap file
// proved unreadable: the catalog forgets it (queries fail fast with a
// typed message), the file and manifest entry stay for diagnosis, and the
// rest of the server keeps running. Restart re-derives the same quarantine
// from the same corrupt file, so no extra durability work is needed here.
func (e *Engine) quarantineTableLocked(name string, cause error) {
	tf, ok := e.tables[name]
	if !ok {
		return
	}
	e.retired = e.retired.Add(tf.pool.Stats())
	tf.pager.Close() //nolint:errcheck
	delete(e.tables, name)
	delete(e.dirty, name)
	e.quarantine[name] = &quarantined{file: tf.file, err: cause}
	if _, inDB := e.db.Table(name); inDB {
		_, _ = e.db.Exec("DROP TABLE " + name) //nolint:errcheck // catalog detach
	}
	// The catalog changed under readers' feet: invalidate the MVCC snapshot
	// and advance the commit clock so an open transaction that wrote this
	// table conflicts at COMMIT instead of resurrecting it.
	e.verSeq++
	e.ver[name] = e.verSeq
	e.snapStale = true
	e.cfg.Logf("probserve: quarantined table %q (%s): %v", name, tf.file, cause)
}

func (e *Engine) allPersisted(refs []query.TableRef) bool {
	for _, ref := range refs {
		if _, ok := e.tables[ref.Name]; !ok {
			return false
		}
	}
	return true
}

// ReplayErrors returns the typed errors the last recovery skipped past
// (records for quarantined tables and the like). Empty after a clean start.
func (e *Engine) ReplayErrors() []error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]error(nil), e.replayErrs...)
}

// GroupCommitStats returns the cumulative group-commit counters (zero for
// ephemeral engines).
func (e *Engine) GroupCommitStats() txn.Stats {
	e.mu.Lock()
	gc := e.gc
	e.mu.Unlock()
	if gc == nil {
		return txn.Stats{}
	}
	return gc.Stats()
}

// Conflicts returns the engine-wide count of first-writer-wins aborts.
func (e *Engine) Conflicts() uint64 { return e.conflicts.Load() }
