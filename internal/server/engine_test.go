package server

import (
	"os"
	"path/filepath"
	"testing"
)

func mustExecute(t *testing.T, e *Engine, sql string) {
	t.Helper()
	if _, err := e.Execute(sql); err != nil {
		t.Fatalf("execute %q: %v", sql, err)
	}
}

// TestEngineEphemeral: with no data dir everything runs in memory and the
// I/O counters stay zero.
func TestEngineEphemeral(t *testing.T) {
	e, err := OpenEngine(EngineConfig{PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mustExecute(t, e, "CREATE TABLE r (rid INT, value FLOAT UNCERTAIN)")
	mustExecute(t, e, "INSERT INTO r (rid, value) VALUES (1, GAUSSIAN(20, 5))")
	res, err := e.Execute("SELECT rid FROM r WHERE PROB(value) > 0.5")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table == nil || len(res.Table.Rows) != 1 {
		t.Fatalf("rows: %+v", res.Table)
	}
	if res.Stats.PageReads != 0 || res.Stats.PageWrites != 0 || res.Stats.WALBytes != 0 {
		t.Fatalf("ephemeral engine reported I/O: %+v", res.Stats)
	}
}

// TestEngineMassCacheStats: a range-probability query generates cache
// traffic in the Result stats — mass-cache misses on the first run (the
// columnar encode computes every tuple's existence mass), and on a repeat
// a warmed columnar encoding: vectorized tuples with no new mass misses.
func TestEngineMassCacheStats(t *testing.T) {
	e, err := OpenEngine(EngineConfig{PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mustExecute(t, e, "CREATE TABLE r (rid INT, value FLOAT UNCERTAIN)")
	mustExecute(t, e, "INSERT INTO r (rid, value) VALUES (1, GAUSSIAN(20, 5)), (2, GAUSSIAN(30, 2))")
	const q = "SELECT rid FROM r WHERE PROB(value IN [15, 25]) >= 0.1"
	res, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MassCacheMiss == 0 {
		t.Fatalf("first run should miss the mass cache: %+v", res.Stats)
	}
	if res.Stats.VecTuples == 0 {
		t.Fatalf("first run should evaluate on the vectorized kernels: %+v", res.Stats)
	}
	res, err = e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.VecTuples == 0 || res.Stats.MassCacheMiss != 0 {
		t.Fatalf("second run should reuse the warmed columnar encoding: %+v", res.Stats)
	}
}

// TestEnginePersistAndReload verifies the WAL-first write path, cold-scan
// SELECT accounting, restart recovery, and DROP cleanup.
func TestEnginePersistAndReload(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenEngine(EngineConfig{Dir: dir, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	mustExecute(t, e, "CREATE TABLE readings (rid INT, value FLOAT UNCERTAIN)")
	if res, err := e.Execute(
		"INSERT INTO readings (rid, value) VALUES (1, GAUSSIAN(20, 5)), (2, GAUSSIAN(25, 4)), (3, GAUSSIAN(13, 1))"); err != nil {
		t.Fatal(err)
	} else if res.Stats.WALBytes == 0 {
		t.Fatalf("insert reported no WAL bytes: %+v", res.Stats)
	}

	// While the table is dirty (uncheckpointed WAL tail) the SELECT routes
	// through the MVCC snapshot and does no page I/O.
	res, err := e.Execute("SELECT rid FROM readings WHERE value < 20 AND PROB(value) > 0.4")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PageReads != 0 {
		t.Fatalf("dirty-table SELECT did page I/O instead of the snapshot: %+v", res.Stats)
	}

	// After a checkpoint the table is clean and the SELECT cold-scans the
	// heap file with its own page-read accounting.
	mustExecute(t, e, "CHECKPOINT")
	res, err = e.Execute("SELECT rid FROM readings WHERE value < 20 AND PROB(value) > 0.4")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PageReads == 0 {
		t.Fatalf("persisted SELECT reported no page reads: %+v", res.Stats)
	}
	if got := len(res.Table.Rows); got != 2 {
		t.Fatalf("rows: %d, want 2\n%s", got, res.Table.Render())
	}

	// DELETE goes through the WAL; the checkpointed snapshot it eventually
	// replaces is swapped via the manifest, so no temp file must remain
	// after the next checkpoint.
	if res, err = e.Execute("DELETE FROM readings WHERE rid = 1"); err != nil {
		t.Fatal(err)
	} else if res.Affected != 1 {
		t.Fatalf("delete affected %d", res.Affected)
	}
	mustExecute(t, e, "CHECKPOINT")
	if _, err := os.Stat(filepath.Join(dir, "MANIFEST.tmp")); !os.IsNotExist(err) {
		t.Fatalf("manifest temp file left behind: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh engine recovers the surviving rows from disk.
	e2, err := OpenEngine(EngineConfig{Dir: dir, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	res, err = e2.Execute("SELECT rid FROM readings WHERE PROB(value) > 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 2 {
		t.Fatalf("reloaded rows: %d, want 2\n%s", len(res.Table.Rows), res.Table.Render())
	}

	// DROP removes the table's snapshot no later than the next checkpoint.
	mustExecute(t, e2, "DROP TABLE readings")
	mustExecute(t, e2, "CHECKPOINT")
	heaps, err := filepath.Glob(filepath.Join(dir, "readings.*"+heapExt))
	if err != nil {
		t.Fatal(err)
	}
	if len(heaps) != 0 {
		t.Fatalf("heap files survive DROP+CHECKPOINT: %v", heaps)
	}
}

// TestEngineStatsMonotone: retiring pools (checkpoint rewrites, drops) must
// never make a later query's I/O delta underflow.
func TestEngineStatsMonotone(t *testing.T) {
	e, err := OpenEngine(EngineConfig{Dir: t.TempDir(), PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mustExecute(t, e, "CREATE TABLE t (k INT, x FLOAT UNCERTAIN)")
	for i := 0; i < 20; i++ {
		mustExecute(t, e, "INSERT INTO t (k, x) VALUES (1, GAUSSIAN(10, 2))")
		if i%5 == 0 {
			mustExecute(t, e, "CHECKPOINT") // force pool retirement churn
		}
	}
	mustExecute(t, e, "DELETE FROM t WHERE k = 1")
	res, err := e.Execute("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	// An underflow would show up as a delta near 2^64.
	if res.Stats.PageReads > 1<<40 || res.Stats.PageWrites > 1<<40 {
		t.Fatalf("stats delta underflowed: %+v", res.Stats)
	}
}

// TestEngineCheckpointLifecycle pins the generation bookkeeping: WAL files
// are per-generation, checkpoints advance the manifest, and old artifacts
// are garbage-collected.
func TestEngineCheckpointLifecycle(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenEngine(EngineConfig{Dir: dir, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := os.Stat(filepath.Join(dir, "wal.0.log")); err != nil {
		t.Fatalf("fresh engine has no generation-0 WAL: %v", err)
	}
	mustExecute(t, e, "CREATE TABLE s (k INT)")
	mustExecute(t, e, "INSERT INTO s (k) VALUES (1)")
	mustExecute(t, e, "CHECKPOINT")
	if _, err := os.Stat(filepath.Join(dir, "wal.1.log")); err != nil {
		t.Fatalf("checkpoint did not roll the WAL: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "wal.0.log")); !os.IsNotExist(err) {
		t.Fatalf("old WAL not collected: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "s.1.heap")); err != nil {
		t.Fatalf("checkpoint snapshot missing: %v", err)
	}
	// An idle checkpoint (nothing dirty, empty WAL) is a no-op.
	mustExecute(t, e, "CHECKPOINT")
	if _, err := os.Stat(filepath.Join(dir, "wal.1.log")); err != nil {
		t.Fatalf("idle checkpoint rolled the WAL: %v", err)
	}
}

// TestEngineRejectsLegacyLayout: a pre-manifest data dir must produce a
// clear error, not silent data loss.
func TestEngineRejectsLegacyLayout(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "old.heap"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenEngine(EngineConfig{Dir: dir, PoolPages: 8}); err == nil {
		t.Fatal("engine opened a legacy (manifest-less) layout")
	}
}
