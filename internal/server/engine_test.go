package server

import (
	"os"
	"path/filepath"
	"testing"
)

func mustExecute(t *testing.T, e *Engine, sql string) {
	t.Helper()
	if _, err := e.Execute(sql); err != nil {
		t.Fatalf("execute %q: %v", sql, err)
	}
}

// TestEngineEphemeral: with no data dir everything runs in memory and the
// I/O counters stay zero.
func TestEngineEphemeral(t *testing.T) {
	e, err := OpenEngine("", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mustExecute(t, e, "CREATE TABLE r (rid INT, value FLOAT UNCERTAIN)")
	mustExecute(t, e, "INSERT INTO r (rid, value) VALUES (1, GAUSSIAN(20, 5))")
	res, err := e.Execute("SELECT rid FROM r WHERE PROB(value) > 0.5")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table == nil || len(res.Table.Rows) != 1 {
		t.Fatalf("rows: %+v", res.Table)
	}
	if res.Stats.PageReads != 0 || res.Stats.PageWrites != 0 {
		t.Fatalf("ephemeral engine reported I/O: %+v", res.Stats)
	}
}

// TestEnginePersistAndReload writes through to heap files, verifies a cold
// SELECT charges page reads to the query, and reloads the catalog from disk.
func TestEnginePersistAndReload(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenEngine(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	mustExecute(t, e, "CREATE TABLE readings (rid INT, value FLOAT UNCERTAIN)")
	if res, err := e.Execute(
		"INSERT INTO readings (rid, value) VALUES (1, GAUSSIAN(20, 5)), (2, GAUSSIAN(25, 4)), (3, GAUSSIAN(13, 1))"); err != nil {
		t.Fatal(err)
	} else if res.Stats.PageWrites == 0 {
		t.Fatalf("insert reported no page writes: %+v", res.Stats)
	}

	res, err := e.Execute("SELECT rid FROM readings WHERE value < 20 AND PROB(value) > 0.4")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PageReads == 0 {
		t.Fatalf("persisted SELECT reported no page reads: %+v", res.Stats)
	}
	if got := len(res.Table.Rows); got != 2 {
		t.Fatalf("rows: %d, want 2\n%s", got, res.Table.Render())
	}

	// DELETE rewrites the heap atomically; no temp file must remain.
	if res, err = e.Execute("DELETE FROM readings WHERE rid = 1"); err != nil {
		t.Fatal(err)
	} else if res.Affected != 1 {
		t.Fatalf("delete affected %d", res.Affected)
	}
	if _, err := os.Stat(filepath.Join(dir, "readings.heap.tmp")); !os.IsNotExist(err) {
		t.Fatalf("temp rewrite file left behind: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh engine reloads the surviving rows from disk.
	e2, err := OpenEngine(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	res, err = e2.Execute("SELECT rid FROM readings WHERE PROB(value) > 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 2 {
		t.Fatalf("reloaded rows: %d, want 2\n%s", len(res.Table.Rows), res.Table.Render())
	}

	// DROP removes the heap file.
	mustExecute(t, e2, "DROP TABLE readings")
	if _, err := os.Stat(filepath.Join(dir, "readings.heap")); !os.IsNotExist(err) {
		t.Fatalf("heap file survives DROP: %v", err)
	}
}

// TestEngineStatsMonotone: retiring pools (rewrite, drop) must never make a
// later query's I/O delta underflow.
func TestEngineStatsMonotone(t *testing.T) {
	e, err := OpenEngine(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mustExecute(t, e, "CREATE TABLE t (k INT, x FLOAT UNCERTAIN)")
	for i := 0; i < 20; i++ {
		mustExecute(t, e, "INSERT INTO t (k, x) VALUES (1, GAUSSIAN(10, 2))")
	}
	mustExecute(t, e, "DELETE FROM t WHERE k = 1") // retires two pools
	res, err := e.Execute("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	// An underflow would show up as a delta near 2^64.
	if res.Stats.PageReads > 1<<40 || res.Stats.PageWrites > 1<<40 {
		t.Fatalf("stats delta underflowed: %+v", res.Stats)
	}
}
