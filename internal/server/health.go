package server

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"probdb/internal/govern"
	"probdb/internal/wire"
)

// ReadOnlyError is the typed refusal for writes while the engine is in a
// declared read-only mode — an operator- or watchdog-imposed state (disk
// space below threshold) that, unlike the durability-failure latch, is
// expected to clear at runtime. The statement was refused before
// execution, so retrying after the condition clears is always safe.
type ReadOnlyError struct {
	Reason string
}

func (e *ReadOnlyError) Error() string {
	return fmt.Sprintf("server: engine is read-only: %s", e.Reason)
}

// Retryable reports true: the write was never executed and the mode is
// transient by declaration.
func (e *ReadOnlyError) Retryable() bool { return true }

// SetReadOnly puts the engine into declared read-only mode. Idempotent;
// a second call updates the reason.
func (e *Engine) SetReadOnly(reason string) {
	e.mu.Lock()
	prev := e.readOnly
	e.readOnly = &ReadOnlyError{Reason: reason}
	e.mu.Unlock()
	if prev == nil || prev.Reason != reason {
		e.cfg.Logf("probserve: engine now read-only: %s", reason)
	}
}

// ClearReadOnly leaves declared read-only mode (the durability-failure
// latch, if set, still blocks writes — it needs a restart).
func (e *Engine) ClearReadOnly() {
	e.mu.Lock()
	was := e.readOnly != nil
	e.readOnly = nil
	e.mu.Unlock()
	if was {
		e.cfg.Logf("probserve: engine read-write again")
	}
}

// Budget returns the engine's server-wide budget (nil when accounting is
// disabled).
func (e *Engine) Budget() *govern.Budget { return e.bud }

// isHealthSQL recognizes the HEALTH statement. Like CHECKPOINT it is an
// engine-level command, not part of the query language; the server answers
// it without going through admission, so it works during overload — which
// is exactly when an operator needs it.
func isHealthSQL(sql string) bool {
	s := strings.TrimSpace(sql)
	s = strings.TrimSuffix(s, ";")
	return strings.EqualFold(strings.TrimSpace(s), "HEALTH")
}

// EngineHealth is the engine's part of a HEALTH report.
type EngineHealth struct {
	Mode        string   // "read-write", "read-only (declared: ...)", "read-only (durability: ...)"
	BudgetUsed  int64    // bytes currently reserved against the server budget
	BudgetLimit int64    // configured limit (0 = accounting disabled/unlimited)
	BudgetHigh  int64    // high-water mark
	ShedBytes   int64    // cumulative bytes reclaimed under pressure
	Conflicts   uint64   // first-writer-wins aborts
	Quarantined []string // quarantined table names, sorted
	ReplayErrs  []string // typed errors the last recovery skipped past
	Generation  uint64   // checkpoint generation
	Tables      int      // catalog size
	// The columnar-encoding cache's state: resident bytes, lifetime
	// hit/miss totals, and the cumulative bytes memory pressure has shed
	// from it (each shed costs later queries a re-encode).
	ColPDFBytes  int64
	ColPDFHits   uint64
	ColPDFMisses uint64
	ColPDFShed   int64
}

// Health snapshots the engine's degradation state.
func (e *Engine) Health() EngineHealth {
	e.mu.Lock()
	defer e.mu.Unlock()
	h := EngineHealth{Mode: "read-write", Generation: e.gen, Tables: len(e.db.TableNames())}
	switch {
	case e.broken != nil:
		h.Mode = fmt.Sprintf("read-only (durability: %v)", e.broken)
	case e.readOnly != nil:
		h.Mode = fmt.Sprintf("read-only (declared: %s)", e.readOnly.Reason)
	}
	h.BudgetUsed = e.bud.Used()
	h.BudgetLimit = e.bud.Limit()
	h.BudgetHigh = e.bud.HighWater()
	h.ShedBytes = e.bud.ShedBytes()
	h.Conflicts = e.conflicts.Load()
	colenc := e.db.Registry().ColCache()
	h.ColPDFBytes = colenc.Bytes()
	h.ColPDFHits, h.ColPDFMisses = colenc.Counters()
	h.ColPDFShed = colenc.ShedTotal()
	for name := range e.quarantine {
		h.Quarantined = append(h.Quarantined, name)
	}
	sort.Strings(h.Quarantined)
	for _, re := range e.replayErrs {
		h.ReplayErrs = append(h.ReplayErrs, re.Error())
	}
	return h
}

// execHealth answers HEALTH for embedded callers (engine sessions have no
// admission queue; the network server composes its own richer report).
func (e *Engine) execHealth() (*wire.Result, error) {
	start := time.Now()
	h := e.Health()
	var b strings.Builder
	renderEngineHealth(&b, h)
	return &wire.Result{
		Message: strings.TrimRight(b.String(), "\n"),
		Stats:   wire.Stats{LatencyMicros: uint64(time.Since(start).Microseconds())},
	}, nil
}

// renderEngineHealth writes the engine lines of a HEALTH report.
func renderEngineHealth(b *strings.Builder, h EngineHealth) {
	fmt.Fprintf(b, "mode: %s\n", h.Mode)
	if h.BudgetLimit > 0 {
		fmt.Fprintf(b, "memory: %d/%d bytes (high-water %d, shed %d)\n",
			h.BudgetUsed, h.BudgetLimit, h.BudgetHigh, h.ShedBytes)
	} else {
		fmt.Fprintf(b, "memory: unlimited (used %d bytes)\n", h.BudgetUsed)
	}
	fmt.Fprintf(b, "tables: %d (generation %d), txn conflicts: %d\n", h.Tables, h.Generation, h.Conflicts)
	fmt.Fprintf(b, "colpdf-cache: %d bytes, %d hits, %d misses, shed %d\n",
		h.ColPDFBytes, h.ColPDFHits, h.ColPDFMisses, h.ColPDFShed)
	if len(h.Quarantined) > 0 {
		fmt.Fprintf(b, "quarantined: %s\n", strings.Join(h.Quarantined, ", "))
	}
	for _, re := range h.ReplayErrs {
		fmt.Fprintf(b, "replay-error: %s\n", re)
	}
}

// healthResult composes the server's full HEALTH report: the engine state
// plus admission-queue depths and rejection counters. Served from the
// session goroutine, bypassing the admission queue, so it answers even
// when every worker slot is occupied.
func (s *Server) healthResult() *wire.Result {
	start := time.Now()
	var b strings.Builder
	renderEngineHealth(&b, s.eng.Health())
	depths, limits := s.adm.Depths(), s.adm.Limits()
	fmt.Fprintf(&b, "admission: read %d/%d, write %d/%d, txn %d/%d (rejected %d)\n",
		depths[govern.ClassRead], limits[govern.ClassRead],
		depths[govern.ClassWrite], limits[govern.ClassWrite],
		depths[govern.ClassTxn], limits[govern.ClassTxn],
		s.adm.Rejections())
	fmt.Fprintf(&b, "sessions: %d/%d", s.connCount(), s.cfg.MaxConns)
	return &wire.Result{
		Message: b.String(),
		Stats:   wire.Stats{LatencyMicros: uint64(time.Since(start).Microseconds())},
	}
}

func (s *Server) connCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// diskWatchdog polls free space under the data directory and flips the
// engine into declared read-only mode when it drops below the configured
// threshold — refusing writes *before* a WAL flush fails and latches the
// engine until restart. Hysteresis: the mode clears only once free space
// recovers to twice the threshold, so a filesystem hovering at the line
// does not flap. Runs until the server's quit channel closes.
func (s *Server) diskWatchdog() {
	defer s.grp.Done()
	const reason = "disk free below threshold"
	ticker := time.NewTicker(s.cfg.DiskPollInterval)
	defer ticker.Stop()
	degraded := false
	for {
		select {
		case <-s.quit:
			return
		case <-ticker.C:
		}
		free, err := s.cfg.DiskFree(s.cfg.DataDir)
		if err != nil {
			s.cfg.Logf("probserve: disk watchdog: %v", err)
			continue
		}
		switch {
		case !degraded && free < s.cfg.MinDiskFree:
			degraded = true
			s.eng.SetReadOnly(fmt.Sprintf("%s (%d < %d bytes)", reason, free, s.cfg.MinDiskFree))
		case degraded && free >= 2*s.cfg.MinDiskFree:
			degraded = false
			s.eng.ClearReadOnly()
		}
	}
}
