package server

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"probdb/internal/vfs"
)

// The manifest is the data directory's commit record: a tiny text file
// naming the current checkpoint generation and the heap file that holds
// each table's checkpointed snapshot. It is replaced atomically (write to
// MANIFEST.tmp, fsync, rename, fsync dir), so at every instant exactly one
// complete manifest is visible — the checkpoint's commit point. Heap files
// are immutable once referenced: a checkpoint writes a table's new snapshot
// under a fresh generation-suffixed name and only then flips the manifest,
// which is what makes a crash at any point during a checkpoint harmless.
//
// Besides the table snapshots the manifest also carries the planner's
// catalog state at checkpoint time: one `stats` line per ANALYZE'd table
// (base64 JSON — Sscanf-safe, single token) and one `index` line per
// CREATE INDEX definition. Indexes persist as definitions only; recovery
// rebuilds the structures from the reloaded tables. Both are additive line
// kinds within the v1 format: pre-planner manifests simply have none.
//
// Format (line-oriented, CRC32C of the preceding lines in the trailer):
//
//	probdb-manifest v1
//	gen 7
//	table readings readings.7.heap
//	table sensors sensors.3.heap
//	stats readings eyJSb3dzIjo...
//	index readings temp
//	crc 89ab12cd
const (
	manifestName   = "MANIFEST"
	manifestHeader = "probdb-manifest v1"
)

type manifestEntry struct {
	Name string // table name
	File string // heap file basename within the data dir
}

// statsEntry is one table's ANALYZE statistics, serialized opaquely.
type statsEntry struct {
	Table string
	Data  string // base64(JSON) — decoded by the engine, not the manifest
}

// indexEntry is one CREATE INDEX definition.
type indexEntry struct {
	Table string
	Col   string
}

type manifest struct {
	Gen     uint64
	Tables  []manifestEntry
	Stats   []statsEntry
	Indexes []indexEntry
}

// files returns the set of heap file basenames the manifest references.
func (m *manifest) files() map[string]bool {
	s := make(map[string]bool, len(m.Tables))
	for _, e := range m.Tables {
		s[e.File] = true
	}
	return s
}

func (m *manifest) encode() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", manifestHeader)
	fmt.Fprintf(&b, "gen %d\n", m.Gen)
	sort.Slice(m.Tables, func(i, j int) bool { return m.Tables[i].Name < m.Tables[j].Name })
	for _, e := range m.Tables {
		fmt.Fprintf(&b, "table %s %s\n", e.Name, e.File)
	}
	sort.Slice(m.Stats, func(i, j int) bool { return m.Stats[i].Table < m.Stats[j].Table })
	for _, s := range m.Stats {
		fmt.Fprintf(&b, "stats %s %s\n", s.Table, s.Data)
	}
	sort.Slice(m.Indexes, func(i, j int) bool {
		if m.Indexes[i].Table != m.Indexes[j].Table {
			return m.Indexes[i].Table < m.Indexes[j].Table
		}
		return m.Indexes[i].Col < m.Indexes[j].Col
	})
	for _, ix := range m.Indexes {
		fmt.Fprintf(&b, "index %s %s\n", ix.Table, ix.Col)
	}
	body := b.String()
	sum := crc32.Checksum([]byte(body), castagnoliTable)
	return []byte(fmt.Sprintf("%scrc %08x\n", body, sum))
}

var castagnoliTable = crc32.MakeTable(crc32.Castagnoli)

func decodeManifest(raw []byte) (*manifest, error) {
	text := string(raw)
	idx := strings.LastIndex(text, "crc ")
	if idx < 0 || idx > 0 && text[idx-1] != '\n' {
		return nil, fmt.Errorf("server: manifest has no checksum line")
	}
	body, tail := text[:idx], text[idx:]
	var sum uint32
	if _, err := fmt.Sscanf(tail, "crc %x", &sum); err != nil {
		return nil, fmt.Errorf("server: manifest checksum line: %w", err)
	}
	if got := crc32.Checksum([]byte(body), castagnoliTable); got != sum {
		return nil, fmt.Errorf("server: manifest checksum mismatch (stored %08x, computed %08x)", sum, got)
	}
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if len(lines) < 2 || lines[0] != manifestHeader {
		return nil, fmt.Errorf("server: manifest header %q unsupported", lines[0])
	}
	m := &manifest{}
	if _, err := fmt.Sscanf(lines[1], "gen %d", &m.Gen); err != nil {
		return nil, fmt.Errorf("server: manifest gen line: %w", err)
	}
	for _, ln := range lines[2:] {
		switch {
		case strings.HasPrefix(ln, "table "):
			var e manifestEntry
			if _, err := fmt.Sscanf(ln, "table %s %s", &e.Name, &e.File); err != nil {
				return nil, fmt.Errorf("server: manifest entry %q: %w", ln, err)
			}
			m.Tables = append(m.Tables, e)
		case strings.HasPrefix(ln, "stats "):
			var s statsEntry
			if _, err := fmt.Sscanf(ln, "stats %s %s", &s.Table, &s.Data); err != nil {
				return nil, fmt.Errorf("server: manifest entry %q: %w", ln, err)
			}
			m.Stats = append(m.Stats, s)
		case strings.HasPrefix(ln, "index "):
			var ix indexEntry
			if _, err := fmt.Sscanf(ln, "index %s %s", &ix.Table, &ix.Col); err != nil {
				return nil, fmt.Errorf("server: manifest entry %q: %w", ln, err)
			}
			m.Indexes = append(m.Indexes, ix)
		default:
			return nil, fmt.Errorf("server: manifest entry %q: unknown kind", ln)
		}
	}
	return m, nil
}

// readManifest loads and validates the data dir's manifest. A missing file
// returns os.ErrNotExist (a fresh or pre-manifest directory).
func readManifest(fsys vfs.FS, dir string) (*manifest, error) {
	path := filepath.Join(dir, manifestName)
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	raw := make([]byte, st.Size())
	if _, err := f.ReadAt(raw, 0); err != nil && st.Size() > 0 {
		return nil, fmt.Errorf("server: read manifest: %w", err)
	}
	m, err := decodeManifest(raw)
	if err != nil {
		return nil, fmt.Errorf("server: %s: %w", path, err)
	}
	return m, nil
}

// writeManifest atomically replaces the manifest: tmp write, fsync, rename
// over the live file, directory fsync. When it returns nil the new manifest
// — and with it the checkpoint — is durable.
func writeManifest(fsys vfs.FS, dir string, m *manifest) error {
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := fsys.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("server: manifest tmp: %w", err)
	}
	enc := m.encode()
	if _, err := f.WriteAt(enc, 0); err != nil {
		f.Close()
		return fmt.Errorf("server: manifest write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("server: manifest sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("server: manifest rename: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("server: manifest dir sync: %w", err)
	}
	return nil
}
