package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"probdb/internal/flakyconn"
	"probdb/internal/pipe"
	"probdb/internal/wire"
)

// waitNoLeaks polls until the goroutine count returns to the baseline or a
// deadline passes, then fails with a full stack dump.
func waitNoLeaks(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func shutdownServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

// TestHealth: the HEALTH statement answers through the wire with the
// engine's mode, budget accounting and admission depths, and also works on
// an embedded engine session.
func TestHealth(t *testing.T) {
	s := startServer(t, Config{Workers: 2, MemBudget: 1 << 20})
	defer shutdownServer(t, s)

	c, err := wire.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Query("HEALTH")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mode: read-write", "memory: ", "colpdf-cache: ", "admission: read ", "sessions: 1/"} {
		if !strings.Contains(res.Message, want) {
			t.Errorf("HEALTH missing %q in:\n%s", want, res.Message)
		}
	}

	// Embedded path: an engine session answers HEALTH without a server.
	ses := s.Engine().NewSession()
	defer ses.Close()
	eres, err := ses.Execute("  health ; ")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eres.Message, "mode: read-write") {
		t.Errorf("embedded HEALTH: %q", eres.Message)
	}
}

// TestOverloadStress: greedy concurrent sorts against a deliberately small
// server memory budget. The invariants: the budget's high-water mark never
// exceeds the limit (no OOM growth), every refusal is a typed retryable
// error, reservations drain to zero, no operators or goroutines leak, and
// the server still answers once the storm passes.
func TestOverloadStress(t *testing.T) {
	before := runtime.NumGoroutine()
	opsBefore := pipe.OpenOperators()
	// A single query (~2.3MiB) plus the cached snapshot (~1.2MiB) fits in
	// 5MiB; two concurrent queries collide — pressure comes from
	// concurrency, not from any one query being inherently too large.
	const memBudget = 5 << 20
	// DataDir plus disabled auto-checkpointing keeps the table dirty, so
	// SELECTs take the snapshot route and actually run concurrently —
	// clean-table cold scans would serialize under the engine mutex and
	// never contend for memory.
	s := startServer(t, Config{
		Workers: 4, MemBudget: memBudget, QueryTimeout: 20 * time.Second,
		DataDir: t.TempDir(), CheckpointBytes: -1,
	})
	addr := s.Addr().String()

	setup, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Query("CREATE TABLE big (k INT, v INT)"); err != nil {
		t.Fatal(err)
	}
	// ~6000 tuples at 192 bytes of accounted cost each: one ORDER BY holds
	// ~2.3MiB across its Sort and Project breakers for the whole streaming
	// phase, so two overlapping queries bust the 5MiB budget.
	for lo := 0; lo < 6000; lo += 500 {
		var b strings.Builder
		b.WriteString("INSERT INTO big (k, v) VALUES ")
		for i := lo; i < lo+500; i++ {
			if i > lo {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "(%d, %d)", i, (i*7919)%3000)
		}
		if _, err := setup.Query(b.String()); err != nil {
			t.Fatal(err)
		}
	}
	setup.Close()

	const clients = 16
	const iters = 8
	var (
		wg        sync.WaitGroup
		succeeded atomic.Uint64
		refused   atomic.Uint64
		hardFail  = make(chan error, clients)
	)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := wire.Dial(addr)
			if err != nil {
				hardFail <- err
				return
			}
			defer c.Close()
			c.SetCallTimeout(30 * time.Second)
			for i := 0; i < iters; i++ {
				_, err := c.Query("SELECT k, v FROM big ORDER BY v")
				if err == nil {
					succeeded.Add(1)
					continue
				}
				var se *wire.ServerError
				if !errors.As(err, &se) || !se.Retryable() {
					hardFail <- fmt.Errorf("client %d: untyped overload failure: %v", id, err)
					return
				}
				refused.Add(1)
			}
		}(id)
	}
	wg.Wait()
	close(hardFail)
	for err := range hardFail {
		t.Fatal(err)
	}
	t.Logf("overload: %d queries succeeded, %d refused with typed retryable errors (shed %d bytes)",
		succeeded.Load(), refused.Load(), s.bud.ShedBytes())
	if refused.Load() == 0 {
		t.Fatal("no query ever hit the budget — the governor never engaged")
	}
	if succeeded.Load() == 0 {
		t.Fatal("every query was refused — degradation was total, not graceful")
	}

	if hw := s.bud.HighWater(); hw > memBudget {
		t.Fatalf("budget high-water %d exceeded the %d limit", hw, memBudget)
	}

	// Quiesced: once the cached MVCC snapshot (which legitimately holds
	// its charge between queries) is shed, every reservation must have
	// been returned.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.eng.shedSnapshot(1 << 30)
		if s.bud.Used() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("budget did not drain: %d bytes still reserved", s.bud.Used())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Service resumes: a fresh client's query succeeds and carries the
	// cumulative governance gauges in its stats.
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.QueryRetry("SELECT COUNT(*) FROM big", 5)
	if err != nil {
		t.Fatalf("service did not resume after overload: %v", err)
	}
	if res.Stats.Rejections == 0 && refused.Load() > 0 {
		// Admission never refused (budget did), so Rejections may be 0 —
		// but ShedBytes or the latency stat must still round-trip.
		_ = res
	}
	c.Close()

	shutdownServer(t, s)
	if got := pipe.OpenOperators(); got != opsBefore {
		t.Fatalf("operator leak: %d open before, %d after", opsBefore, got)
	}
	waitNoLeaks(t, before)
}

// TestGovernanceDifferential: with a budget generous enough to never
// trigger, the governed server must produce byte-identical results to an
// ungoverned one — accounting may observe, never perturb. Stats are zeroed
// before comparison (latency and queue wait are wall-clock, and the
// governance gauges exist only on the governed side by design).
func TestGovernanceDifferential(t *testing.T) {
	queries := []string{
		"CREATE TABLE d (k INT, x FLOAT UNCERTAIN)",
		"INSERT INTO d (k, x) VALUES (1, GAUSSIAN(10, 2)), (2, GAUSSIAN(20, 3)), (3, GAUSSIAN(30, 1))",
		"INSERT INTO d (k, x) VALUES (4, UNIFORM(0, 8)), (5, GAUSSIAN(15, 5))",
		"SELECT k, x FROM d ORDER BY k",
		"SELECT k FROM d WHERE x < 25 AND PROB(x) > 0.3 ORDER BY PROB(x) DESC",
		"SELECT COUNT(*) FROM d",
		"CREATE TABLE e (k INT, n INT)",
		"INSERT INTO e (k, n) VALUES (1, 100), (2, 200), (4, 400)",
		"SELECT d.k, e.n FROM d, e WHERE d.k = e.k ORDER BY e.n",
	}
	run := func(cfg Config) [][]byte {
		s := startServer(t, cfg)
		defer shutdownServer(t, s)
		c, err := wire.Dial(s.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		var out [][]byte
		for _, q := range queries {
			res, err := c.Query(q)
			if err != nil {
				t.Fatalf("%q: %v", q, err)
			}
			res.Stats = wire.Stats{}
			out = append(out, wire.EncodeResult(res))
		}
		return out
	}
	plain := run(Config{Workers: 2})
	governed := run(Config{Workers: 2, MemBudget: 1 << 40, SessionMem: 1 << 38, QueryMem: 1 << 36})
	for i := range queries {
		if string(plain[i]) != string(governed[i]) {
			t.Errorf("query %q: governed result diverges from ungoverned\nplain:    %x\ngoverned: %x",
				queries[i], plain[i], governed[i])
		}
	}
}

// TestDiskWatchdogReadOnly: when the (injected) free-space probe dips below
// the threshold the engine turns declared read-only — writes refuse with a
// typed retryable error, reads keep working, HEALTH reports the mode — and
// it recovers on its own once space returns above twice the threshold.
func TestDiskWatchdogReadOnly(t *testing.T) {
	var free atomic.Int64
	free.Store(1 << 30)
	s := startServer(t, Config{
		Workers:          2,
		DataDir:          t.TempDir(),
		MinDiskFree:      1000,
		DiskPollInterval: 5 * time.Millisecond,
		DiskFree:         func(string) (int64, error) { return free.Load(), nil },
	})
	defer shutdownServer(t, s)

	c, err := wire.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query("CREATE TABLE w (k INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("INSERT INTO w (k) VALUES (1)"); err != nil {
		t.Fatal(err)
	}

	// Disk "fills up": the next poll must flip the engine read-only.
	free.Store(500)
	var se *wire.ServerError
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := c.Query("INSERT INTO w (k) VALUES (2)")
		if err != nil {
			if !errors.As(err, &se) {
				t.Fatalf("read-only refusal is not a ServerError: %v", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watchdog never flipped the engine read-only")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if se.Code != wire.ErrReadOnly {
		t.Fatalf("refusal code %v, want ErrReadOnly (msg %q)", se.Code, se.Msg)
	}
	if !se.Retryable() {
		t.Fatal("declared read-only must be retryable")
	}

	// Reads and HEALTH still work while writes are refused.
	if _, err := c.Query("SELECT k FROM w"); err != nil {
		t.Fatalf("read failed in read-only mode: %v", err)
	}
	res, err := c.Query("HEALTH")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Message, "read-only (declared:") {
		t.Fatalf("HEALTH does not report declared read-only:\n%s", res.Message)
	}

	// Space recovers past the hysteresis point: writes resume.
	free.Store(2000)
	deadline = time.Now().Add(5 * time.Second)
	for {
		if _, err := c.Query("INSERT INTO w (k) VALUES (3)"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("engine never recovered from read-only after space returned")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerFlakyClients: a crowd of clients whose connections chunk,
// stall, and die mid-stream must each cost exactly one session. The server
// survives, a healthy client still gets full service, and nothing leaks.
func TestServerFlakyClients(t *testing.T) {
	before := runtime.NumGoroutine()
	s := startServer(t, Config{Workers: 2, MaxConns: 32, QueryTimeout: 10 * time.Second})
	addr := s.Addr().String()

	setup, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Query("CREATE TABLE f (k INT, x FLOAT UNCERTAIN)"); err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < 1500; lo += 500 {
		var b strings.Builder
		b.WriteString("INSERT INTO f (k, x) VALUES ")
		for i := lo; i < lo+500; i++ {
			if i > lo {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "(%d, GAUSSIAN(%d, 2))", i, i%50)
		}
		if _, err := setup.Query(b.String()); err != nil {
			t.Fatal(err)
		}
	}
	setup.Close()

	const flaky = 10
	var wg sync.WaitGroup
	for id := 0; id < flaky; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			raw, err := net.Dial("tcp", addr)
			if err != nil {
				t.Errorf("flaky %d: dial: %v", id, err)
				return
			}
			fc := flakyconn.New(raw, flakyconn.Config{
				Seed:       int64(id + 1),
				ChunkMax:   7,
				StallEvery: 50,
				Stall:      time.Millisecond,
				DropAfter:  int64(200 + id*157), // die at a different frame offset each
			})
			c := wire.NewClient(fc)
			defer c.Close()
			c.SetCallTimeout(10 * time.Second)
			// Hammer streamed SELECTs until the injected drop severs us;
			// every outcome except a server crash is acceptable.
			for i := 0; i < 50; i++ {
				if _, err := c.Query("SELECT k FROM f WHERE k < 1200"); err != nil {
					return
				}
			}
		}(id)
	}
	wg.Wait()

	// The server shrugged: a healthy client gets answers.
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatalf("dial after chaos: %v", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after chaos: %v", err)
	}
	res, err := c.Query("SELECT COUNT(*) FROM f")
	if err != nil {
		t.Fatalf("query after chaos: %v", err)
	}
	if res == nil {
		t.Fatal("nil result after chaos")
	}
	c.Close()

	shutdownServer(t, s)
	waitNoLeaks(t, before)
}
