package server

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"probdb/internal/vfs"
	"probdb/internal/vfs/faultfs"
)

// plannerProbe is the reference query of the planner recovery tests: a
// probability-range predicate the PTI answers when present.
const plannerProbe = "SELECT k FROM p WHERE PROB(x IN [20, 40]) >= 0.5"

// plannerWorkload exercises the planner's durability surface: ANALYZE and
// CREATE INDEX records in the WAL, their manifest lines at a checkpoint, and
// post-checkpoint DML the recovered indexes must absorb.
var plannerWorkload = []string{
	"CREATE TABLE p (k INT, x FLOAT UNCERTAIN)",
	"INSERT INTO p (k, x) VALUES (1, GAUSSIAN(5, 3))",
	"INSERT INTO p (k, x) VALUES (2, GAUSSIAN(10, 3))",
	"INSERT INTO p (k, x) VALUES (3, GAUSSIAN(15, 3))",
	"INSERT INTO p (k, x) VALUES (4, GAUSSIAN(20, 3))",
	"INSERT INTO p (k, x) VALUES (5, GAUSSIAN(25, 3))",
	"INSERT INTO p (k, x) VALUES (6, GAUSSIAN(30, 3))",
	"CREATE INDEX ON p (x)",
	"CREATE INDEX ON p (k)",
	"ANALYZE p",
	"CHECKPOINT",
	"INSERT INTO p (k, x) VALUES (7, GAUSSIAN(35, 3))",
	"INSERT INTO p (k, x) VALUES (8, GAUSSIAN(40, 3))",
	"DELETE FROM p WHERE k = 5",
	"ANALYZE p",
	plannerProbe,
}

// selectKeys runs a single-int-column SELECT and returns the sorted keys.
func selectKeys(t *testing.T, e *Engine, sql string) []int {
	t.Helper()
	res, err := e.Execute(sql)
	if err != nil {
		t.Fatalf("%q: %v", sql, err)
	}
	ks := []int{}
	if res.Table != nil {
		for _, row := range res.Table.Rows {
			ks = append(ks, int(row.Cells[0].Value.I))
		}
	}
	sort.Ints(ks)
	return ks
}

// TestPlannerStateSurvivesRestart: ANALYZE statistics and index definitions
// must come back after a clean Close (manifest path) with the indexes live —
// probing, pruning, and absorbing post-restart DML.
func TestPlannerStateSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenEngine(EngineConfig{Dir: dir, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, sql := range plannerWorkload {
		mustExecute(t, e, sql)
	}
	want := selectKeys(t, e, plannerProbe)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenEngine(EngineConfig{Dir: dir, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	ts := re.DB().TableStats("p")
	if ts == nil {
		t.Fatal("stats did not survive the restart")
	}
	if ts.Rows != 7 {
		t.Fatalf("recovered stats claim %d rows, want 7", ts.Rows)
	}
	cols := re.DB().IndexedCols("p")
	if cols["x"] != "pti" || cols["k"] != "btree" || len(cols) != 2 {
		t.Fatalf("recovered indexes: %v, want x→pti, k→btree", cols)
	}
	// The recovered PTI is live: EXPLAIN picks it and the probe answers match
	// a forced full scan.
	res, err := re.Execute("EXPLAIN " + plannerProbe)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Message, "access: pti(x)") {
		t.Fatalf("EXPLAIN after restart does not use the index:\n%s", res.Message)
	}
	if got := selectKeys(t, re, plannerProbe); !equalInts(got, want) {
		t.Fatalf("probe after restart: %v, want %v", got, want)
	}
	// Post-restart DML flows through the rebuilt indexes.
	mustExecute(t, re, "INSERT INTO p (k, x) VALUES (9, GAUSSIAN(28, 3))")
	mustExecute(t, re, "DELETE FROM p WHERE k = 4")
	got := selectKeys(t, re, plannerProbe)
	re.DB().SetForceScan(true)
	wantScan := selectKeys(t, re, plannerProbe)
	re.DB().SetForceScan(false)
	if !equalInts(got, wantScan) {
		t.Fatalf("post-restart DML: planner %v, scan %v", got, wantScan)
	}
}

// TestPlannerStateSurvivesCrash: with checkpoints disabled the planner DDL
// exists only as WAL records; recovery replay must re-execute it.
func TestPlannerStateSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenEngine(EngineConfig{Dir: dir, PoolPages: 8, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, sql := range plannerWorkload {
		if sql == "CHECKPOINT" {
			continue
		}
		mustExecute(t, e, sql)
	}
	want := selectKeys(t, e, plannerProbe)
	e.Abort() // crash: everything after CREATE TABLE lives in the WAL only

	re, err := OpenEngine(EngineConfig{Dir: dir, PoolPages: 8, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if ts := re.DB().TableStats("p"); ts == nil {
		t.Fatal("stats lost in WAL-only crash recovery")
	}
	if cols := re.DB().IndexedCols("p"); len(cols) != 2 {
		t.Fatalf("indexes lost in WAL-only crash recovery: %v", cols)
	}
	if got := selectKeys(t, re, plannerProbe); !equalInts(got, want) {
		t.Fatalf("probe after crash: %v, want %v", got, want)
	}
}

// TestPlannerRecoveryCrashMatrix sweeps a crash across every mutating
// filesystem operation of the planner workload, in every fault mode. The
// invariant is weaker than full recovery and that is the point: after any
// crash the planner may have lost its stats or indexes (they degrade to a
// full scan) but the probe's answers must always equal a forced full scan —
// the planner never converts a crash into a wrong answer.
func TestPlannerRecoveryCrashMatrix(t *testing.T) {
	countDir := t.TempDir()
	in := faultfs.NewInjector()
	e, err := OpenEngine(EngineConfig{Dir: countDir, PoolPages: 8, CheckpointBytes: -1, FS: faultfs.New(vfs.OS, in)})
	if err != nil {
		t.Fatal(err)
	}
	in.Arm(0, faultfs.ModeFail)
	for _, sql := range plannerWorkload {
		mustExecute(t, e, sql)
	}
	nOps := in.Ops()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if nOps < 15 {
		t.Fatalf("planner workload issued only %d mutating ops; the sweep would be trivial", nOps)
	}
	t.Logf("planner workload: %d mutating filesystem operations", nOps)

	modes := []struct {
		name string
		mode faultfs.Mode
	}{
		{"fail", faultfs.ModeFail},
		{"short", faultfs.ModeShortWrite},
		{"torn", faultfs.ModeTornWrite},
	}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			for k := 1; k <= nOps; k++ {
				dir := filepath.Join(t.TempDir(), fmt.Sprintf("crash%d", k))
				in := faultfs.NewInjector()
				e, err := OpenEngine(EngineConfig{
					Dir: dir, PoolPages: 8, CheckpointBytes: -1,
					FS: faultfs.New(vfs.OS, in),
				})
				if err != nil {
					t.Fatalf("op %d: open: %v", k, err)
				}
				in.Arm(k, mode.mode)
				for _, sql := range plannerWorkload {
					_, _ = e.Execute(sql) //nolint:errcheck // post-fault statements may fail
				}
				e.Abort()

				re, err := OpenEngine(EngineConfig{Dir: dir, PoolPages: 8, CheckpointBytes: -1})
				if err != nil {
					t.Fatalf("op %d (%s): recovery failed: %v", k, mode.name, err)
				}
				if _, ok := re.DB().Table("p"); ok {
					got := selectKeys(t, re, plannerProbe)
					re.DB().SetForceScan(true)
					want := selectKeys(t, re, plannerProbe)
					re.DB().SetForceScan(false)
					if !equalInts(got, want) {
						t.Fatalf("op %d (%s): planner answers %v, forced scan %v", k, mode.name, got, want)
					}
				}
				if !in.Injected() {
					// No fault fired: the full workload committed, so the
					// planner state must be fully present, not just safe.
					if re.DB().TableStats("p") == nil || len(re.DB().IndexedCols("p")) != 2 {
						t.Fatalf("op %d (%s): fault never fired yet planner state incomplete", k, mode.name)
					}
				}
				if err := re.Close(); err != nil {
					t.Fatalf("op %d (%s): close after recovery: %v", k, mode.name, err)
				}
			}
		})
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
