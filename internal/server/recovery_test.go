package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"probdb/internal/vfs"
	"probdb/internal/vfs/faultfs"
)

// crashStep is one workload statement plus its effect on the logical model
// (table name → set of k values). CHECKPOINT steps have a nil apply: they
// change the disk layout but never the logical state.
type crashStep struct {
	sql   string
	apply func(m map[string][]int)
}

// crashWorkload exercises every WAL record type plus explicit checkpoints,
// so the fault sweep below crosses every phase of the persistence path:
// statement appends, snapshot writes, the manifest commit, the WAL roll,
// and garbage collection.
var crashWorkload = []crashStep{
	{"CREATE TABLE r (k INT, x FLOAT UNCERTAIN)", func(m map[string][]int) { m["r"] = nil }},
	{"INSERT INTO r (k, x) VALUES (1, GAUSSIAN(10, 2))", func(m map[string][]int) { m["r"] = append(m["r"], 1) }},
	{"INSERT INTO r (k, x) VALUES (2, GAUSSIAN(20, 2))", func(m map[string][]int) { m["r"] = append(m["r"], 2) }},
	{"CHECKPOINT", nil},
	{"INSERT INTO r (k, x) VALUES (3, GAUSSIAN(30, 2))", func(m map[string][]int) { m["r"] = append(m["r"], 3) }},
	{"DELETE FROM r WHERE k = 2", func(m map[string][]int) {
		var keep []int
		for _, k := range m["r"] {
			if k != 2 {
				keep = append(keep, k)
			}
		}
		m["r"] = keep
	}},
	{"CREATE TABLE tmp (k INT)", func(m map[string][]int) { m["tmp"] = nil }},
	{"INSERT INTO tmp (k) VALUES (7)", func(m map[string][]int) { m["tmp"] = append(m["tmp"], 7) }},
	{"DROP TABLE tmp", func(m map[string][]int) { delete(m, "tmp") }},
	{"CHECKPOINT", nil},
	{"INSERT INTO r (k, x) VALUES (4, GAUSSIAN(40, 2))", func(m map[string][]int) { m["r"] = append(m["r"], 4) }},
}

// renderModel canonicalizes a logical state for comparison.
func renderModel(m map[string][]int) string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		ks := append([]int(nil), m[n]...)
		sort.Ints(ks)
		fmt.Fprintf(&b, "%s:%v;", n, ks)
	}
	return b.String()
}

// engineState reads the recovered engine back into model form.
func engineState(t *testing.T, e *Engine) string {
	t.Helper()
	m := map[string][]int{}
	for _, name := range e.DB().TableNames() {
		res, err := e.Execute("SELECT k FROM " + name)
		if err != nil {
			t.Fatalf("state read %s: %v", name, err)
		}
		ks := []int{}
		if res.Table != nil {
			for _, row := range res.Table.Rows {
				ks = append(ks, int(row.Cells[0].Value.I))
			}
		}
		m[name] = ks
	}
	return renderModel(m)
}

// runCrashWorkload executes the workload against e, returning the logical
// model after the last *successful* mutating statement and (if any mutation
// failed) the model including the first failed mutation — the in-flight
// statement whose durability a crash may legitimately leave either way.
func runCrashWorkload(e *Engine) (committed, inflight string) {
	m := map[string][]int{}
	clone := func() map[string][]int {
		c := map[string][]int{}
		for k, v := range m {
			c[k] = append([]int(nil), v...)
		}
		return c
	}
	inflightModel := ""
	failed := false
	for _, st := range crashWorkload {
		_, err := e.Execute(st.sql)
		if st.apply == nil {
			continue // checkpoint: no logical effect either way
		}
		if err == nil {
			// Post-crash every mutation should fail; if one slips through,
			// applying it keeps the model honest and the final-state
			// comparison will expose any durability violation.
			st.apply(m)
			continue
		}
		if !failed {
			failed = true
			c := clone()
			st.apply(c)
			inflightModel = renderModel(c)
		}
	}
	return renderModel(m), inflightModel
}

// TestRecoveryCrashMatrix is the exhaustive crash sweep: it counts the
// workload's mutating filesystem operations, then re-runs the workload once
// per (operation index k, fault mode), injecting a crash at exactly that
// operation, abandoning the engine, and recovering the directory with a
// clean filesystem. After every crash the recovered state must equal the
// committed prefix — optionally plus the single in-flight statement (whose
// WAL record may or may not have reached the disk before the crash).
func TestRecoveryCrashMatrix(t *testing.T) {
	// Counting run: how many mutating ops does the workload issue?
	countDir := t.TempDir()
	in := faultfs.NewInjector()
	e, err := OpenEngine(EngineConfig{Dir: countDir, PoolPages: 8, CheckpointBytes: -1, FS: faultfs.New(vfs.OS, in)})
	if err != nil {
		t.Fatal(err)
	}
	in.Arm(0, faultfs.ModeFail) // resets the counter; trigger 0 never fires
	wantState, _ := runCrashWorkload(e)
	nOps := in.Ops()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if nOps < 20 {
		t.Fatalf("workload issued only %d mutating ops; the sweep would be trivial", nOps)
	}
	t.Logf("workload: %d mutating filesystem operations, final state %q", nOps, wantState)

	modes := []struct {
		name string
		mode faultfs.Mode
	}{
		{"fail", faultfs.ModeFail},
		{"short", faultfs.ModeShortWrite},
		{"torn", faultfs.ModeTornWrite},
	}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			for k := 1; k <= nOps; k++ {
				dir := filepath.Join(t.TempDir(), fmt.Sprintf("crash%d", k))
				in := faultfs.NewInjector()
				e, err := OpenEngine(EngineConfig{
					Dir: dir, PoolPages: 8, CheckpointBytes: -1,
					FS: faultfs.New(vfs.OS, in),
				})
				if err != nil {
					t.Fatalf("op %d: open: %v", k, err)
				}
				in.Arm(k, mode.mode)
				committed, inflight := runCrashWorkload(e)
				e.Abort() // simulate the process dying: no flush, no checkpoint

				// Recover with a healthy filesystem.
				re, err := OpenEngine(EngineConfig{Dir: dir, PoolPages: 8, CheckpointBytes: -1})
				if err != nil {
					t.Fatalf("op %d (%s): recovery failed: %v", k, mode.name, err)
				}
				got := engineState(t, re)
				if got != committed && (inflight == "" || got != inflight) {
					t.Fatalf("op %d (%s): recovered state %q, want %q (committed) or %q (with in-flight)",
						k, mode.name, got, committed, inflight)
				}
				if !in.Injected() && got != wantState {
					t.Fatalf("op %d (%s): fault never fired yet state %q differs from full run %q",
						k, mode.name, got, wantState)
				}
				if err := re.Close(); err != nil {
					t.Fatalf("op %d (%s): close after recovery: %v", k, mode.name, err)
				}
			}
		})
	}
}

// TestRecoveryAfterAbortMidWorkload: even without injected faults, an Abort
// (crash) between statements must lose nothing that was acknowledged.
func TestRecoveryAfterAbortMidWorkload(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenEngine(EngineConfig{Dir: dir, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	mustExecute(t, e, "CREATE TABLE r (k INT, x FLOAT UNCERTAIN)")
	for i := 1; i <= 5; i++ {
		mustExecute(t, e, fmt.Sprintf("INSERT INTO r (k, x) VALUES (%d, GAUSSIAN(%d, 1))", i, 10*i))
	}
	e.Abort() // no Close, no checkpoint: the rows exist only in the WAL

	re, err := OpenEngine(EngineConfig{Dir: dir, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	res, err := re.Execute("SELECT k FROM r")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 5 {
		t.Fatalf("recovered %d rows, want 5", len(res.Table.Rows))
	}
}

// TestQuarantineCorruptTable: flipping bytes in one table's heap file must
// quarantine that table on the next load — the sibling table keeps serving,
// writes to the damaged table are refused, and DROP discards it.
func TestQuarantineCorruptTable(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenEngine(EngineConfig{Dir: dir, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	mustExecute(t, e, "CREATE TABLE good (k INT, x FLOAT UNCERTAIN)")
	mustExecute(t, e, "INSERT INTO good (k, x) VALUES (1, GAUSSIAN(10, 2))")
	mustExecute(t, e, "CREATE TABLE bad (k INT, x FLOAT UNCERTAIN)")
	mustExecute(t, e, "INSERT INTO bad (k, x) VALUES (2, GAUSSIAN(20, 2))")
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	heaps, err := filepath.Glob(filepath.Join(dir, "bad.*"+heapExt))
	if err != nil || len(heaps) != 1 {
		t.Fatalf("bad heap files: %v (%v)", heaps, err)
	}
	raw, err := os.ReadFile(heaps[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0xFF
	if err := os.WriteFile(heaps[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := OpenEngine(EngineConfig{Dir: dir, PoolPages: 8})
	if err != nil {
		t.Fatalf("corrupt table killed the engine: %v", err)
	}
	defer re.Close()
	q := re.Quarantined()
	if _, ok := q["bad"]; !ok || len(q) != 1 {
		t.Fatalf("quarantine set: %v, want exactly {bad}", q)
	}
	// The healthy sibling still serves.
	res, err := re.Execute("SELECT k FROM good")
	if err != nil || len(res.Table.Rows) != 1 {
		t.Fatalf("good table after sibling corruption: %v %v", res, err)
	}
	// Reads and writes against the quarantined table fail with the typed
	// message instead of crashing.
	if _, err := re.Execute("SELECT k FROM bad"); err == nil || !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("select on quarantined table: %v", err)
	}
	if _, err := re.Execute("INSERT INTO bad (k, x) VALUES (9, GAUSSIAN(1, 1))"); err == nil || !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("insert into quarantined table: %v", err)
	}
	if _, err := re.Execute("CREATE TABLE bad (k INT)"); err == nil {
		t.Fatal("create over a quarantined name succeeded")
	}
	// DROP discards the quarantine entry and its file; the name is reusable.
	mustExecute(t, re, "DROP TABLE bad")
	if q := re.Quarantined(); len(q) != 0 {
		t.Fatalf("quarantine survives DROP: %v", q)
	}
	if _, err := os.Stat(heaps[0]); !os.IsNotExist(err) {
		t.Fatalf("quarantined heap file survives DROP: %v", err)
	}
	mustExecute(t, re, "CREATE TABLE bad (k INT)")
	mustExecute(t, re, "INSERT INTO bad (k) VALUES (5)")
	if res, err := re.Execute("SELECT k FROM bad"); err != nil || len(res.Table.Rows) != 1 {
		t.Fatalf("recreated table after quarantine drop: %v %v", res, err)
	}
}

// TestQuarantineDuringScan: corruption that appears while the engine is
// running (after the table was loaded cleanly) is caught by the scan path's
// checksum verification and quarantines the table mid-flight.
func TestQuarantineDuringScan(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenEngine(EngineConfig{Dir: dir, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mustExecute(t, e, "CREATE TABLE s (k INT, x FLOAT UNCERTAIN)")
	mustExecute(t, e, "INSERT INTO s (k, x) VALUES (1, GAUSSIAN(10, 2))")
	mustExecute(t, e, "CHECKPOINT") // snapshot on disk, nothing dirty

	heaps, err := filepath.Glob(filepath.Join(dir, "s.*"+heapExt))
	if err != nil || len(heaps) != 1 {
		t.Fatalf("heap files: %v (%v)", heaps, err)
	}
	raw, err := os.ReadFile(heaps[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[10] ^= 0xFF
	if err := os.WriteFile(heaps[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := e.Execute("SELECT k FROM s"); err == nil {
		t.Fatal("scan over corrupted page succeeded")
	}
	if q := e.Quarantined(); len(q) != 1 {
		t.Fatalf("table not quarantined after corrupt scan: %v", q)
	}
	// The engine survives: other statements keep working.
	mustExecute(t, e, "CREATE TABLE s2 (k INT)")
	mustExecute(t, e, "INSERT INTO s2 (k) VALUES (1)")
}

// TestWALReplayQuarantinedTable: when recovery quarantines a table whose
// heap file is corrupt, WAL records for that table — autocommit and
// transactional alike — are skipped with a typed *QuarantinedTableError the
// caller can enumerate, while the rest of the log replays normally.
func TestWALReplayQuarantinedTable(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenEngine(EngineConfig{Dir: dir, PoolPages: 8, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	mustExecute(t, e, "CREATE TABLE good (k INT, x FLOAT UNCERTAIN)")
	mustExecute(t, e, "CREATE TABLE bad (k INT, x FLOAT UNCERTAIN)")
	mustExecute(t, e, "INSERT INTO bad (k, x) VALUES (1, GAUSSIAN(10, 2))")
	mustExecute(t, e, "CHECKPOINT") // bad's heap file exists; WAL now empty
	// Tail the WAL with records touching both tables, autocommit and txn.
	mustExecute(t, e, "INSERT INTO bad (k, x) VALUES (2, GAUSSIAN(20, 2))")
	mustExecute(t, e, "INSERT INTO good (k, x) VALUES (5, GAUSSIAN(50, 2))")
	s := e.NewSession()
	for _, sql := range []string{
		"BEGIN",
		"INSERT INTO bad (k, x) VALUES (3, GAUSSIAN(30, 2))",
		"COMMIT",
	} {
		if _, err := s.Execute(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	s.Close()
	e.Abort()

	heaps, err := filepath.Glob(filepath.Join(dir, "bad.*"+heapExt))
	if err != nil || len(heaps) != 1 {
		t.Fatalf("bad heap files: %v (%v)", heaps, err)
	}
	raw, err := os.ReadFile(heaps[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(heaps[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := OpenEngine(EngineConfig{Dir: dir, PoolPages: 8, CheckpointBytes: -1})
	if err != nil {
		t.Fatalf("recovery died on quarantined replay: %v", err)
	}
	defer re.Close()
	rerrs := re.ReplayErrors()
	if len(rerrs) != 2 { // the autocommit INSERT and the transactional one
		t.Fatalf("replay errors: %v, want 2", rerrs)
	}
	for _, rerr := range rerrs {
		var qe *QuarantinedTableError
		if !errors.As(rerr, &qe) || qe.Table != "bad" {
			t.Fatalf("replay error %v is not a QuarantinedTableError for bad", rerr)
		}
	}
	// The sibling's record replayed through.
	res, err := re.Execute("SELECT k FROM good")
	if err != nil || len(res.Table.Rows) != 1 {
		t.Fatalf("good after quarantined replay: %v %v", res, err)
	}
	if _, ok := re.Quarantined()["bad"]; !ok {
		t.Fatal("bad not quarantined")
	}
}

// TestConcurrentInsertsWithCheckpoints drives INSERTs from several
// goroutines while another goroutine issues CHECKPOINTs — the interleaving
// the -race build watches, and a durability check at the end.
func TestConcurrentInsertsWithCheckpoints(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenEngine(EngineConfig{Dir: dir, PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	mustExecute(t, e, "CREATE TABLE c (k INT, x FLOAT UNCERTAIN)")

	const writers, perWriter = 4, 15
	var wg sync.WaitGroup
	errs := make(chan error, writers+1)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := w*perWriter + i
				if _, err := e.Execute(fmt.Sprintf("INSERT INTO c (k, x) VALUES (%d, GAUSSIAN(%d, 1))", k, k)); err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if _, err := e.Execute("CHECKPOINT"); err != nil {
				errs <- fmt.Errorf("checkpointer: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	e.Abort() // crash without a final checkpoint

	re, err := OpenEngine(EngineConfig{Dir: dir, PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	res, err := re.Execute("SELECT k FROM c")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Table.Rows); got != writers*perWriter {
		t.Fatalf("recovered %d rows, want %d", got, writers*perWriter)
	}
}
