package server

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"probdb/internal/govern"
	"probdb/internal/query"
	"probdb/internal/vfs"
	"probdb/internal/wal"
	"probdb/internal/wire"
)

// replicaWALFile is the replica's local durable copy of the leader's record
// stream. It is a normal WAL file, byte-identical to the leader's
// concatenated generations: record encoding is deterministic (length, CRC,
// type, payload), so re-appending decoded records reproduces the exact
// shipped bytes and the file's stream length IS the replica's LSN.
const replicaWALFile = "replica.wal"

// ReplicaConfig tunes a read replica. Zero values take the documented
// defaults.
type ReplicaConfig struct {
	// Dir holds replica.wal, the locally durable copy of the shipped
	// history. Required: a replica with no local log would restart at LSN 0
	// and re-pull the world.
	Dir string
	// Leader is the leader server's address ("host:port").
	Leader string
	// Poll is the idle cadence between fetches once caught up. Default
	// 100ms.
	Poll time.Duration
	// MaxFetch bounds one pull's record bytes. Default 1 MiB.
	MaxFetch uint64
	// Parallelism, FS, Logf mirror EngineConfig.
	Parallelism int
	FS          vfs.FS
	Logf        func(format string, args ...any)
}

func (c *ReplicaConfig) fill() {
	if c.Poll <= 0 {
		c.Poll = 100 * time.Millisecond
	}
	if c.MaxFetch == 0 {
		c.MaxFetch = 1 << 20
	}
	if c.FS == nil {
		c.FS = vfs.OS
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Replica tails a leader's WAL over the wire protocol and applies committed
// work to an ephemeral engine serving read-only queries. The apply rules
// are recovery's, with one deliberate difference: a transaction whose
// statements have arrived but whose commit marker has not is *pending*, not
// discarded — the marker is simply later in the stream. Pending work
// survives segment boundaries and replica restarts (the local log replays
// it back into the buffer) and only ever applies at its commit record, so
// the replica exposes exactly the leader's committed prefix, at
// commit-unit granularity.
type Replica struct {
	cfg ReplicaConfig
	eng *Engine
	log *wal.Log

	mu      sync.Mutex
	lsn     int64
	pending map[uint64][]string

	quit chan struct{}
	done chan struct{}
}

// OpenReplica opens (or creates) the replica's local log, replays it into a
// fresh ephemeral engine, and returns the replica ready to Start. The
// engine is declared read-only so client writes are refused with a typed,
// non-retryable-here error pointing at the leader.
func OpenReplica(cfg ReplicaConfig) (*Replica, error) {
	cfg.fill()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("server: replica needs a directory for its local log")
	}
	if err := cfg.FS.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: replica dir: %w", err)
	}
	eng, err := OpenEngine(EngineConfig{Parallelism: cfg.Parallelism, Logf: cfg.Logf})
	if err != nil {
		return nil, err
	}
	eng.SetReadOnly("replica: this node applies the leader's WAL; send writes to the leader")

	path := filepath.Join(cfg.Dir, replicaWALFile)
	var (
		log  *wal.Log
		recs []wal.Record
	)
	if _, serr := cfg.FS.Stat(path); serr != nil {
		log, err = wal.Create(cfg.FS, path)
		if err == nil {
			err = cfg.FS.SyncDir(cfg.Dir)
		}
	} else {
		// Open truncates a torn tail (a crash mid-append): those bytes were
		// never applied and never acknowledged upstream, and the next fetch
		// simply re-pulls them from the leader.
		log, recs, err = wal.Open(cfg.FS, path)
	}
	if err != nil {
		return nil, fmt.Errorf("server: replica log: %w", err)
	}
	r := &Replica{
		cfg:     cfg,
		eng:     eng,
		log:     log,
		lsn:     log.StreamLen(),
		pending: map[uint64][]string{},
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	r.applyRecords(recs)
	if len(recs) > 0 {
		cfg.Logf("probserve: replica: replayed %d local WAL record(s), resuming at LSN %d", len(recs), r.lsn)
	}
	return r, nil
}

// Engine exposes the replica's catalog for serving reads.
func (r *Replica) Engine() *Engine { return r.eng }

// LSN reports the replica's durable stream length — how far behind the
// leader it is, in the shared byte coordinate.
func (r *Replica) LSN() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return uint64(r.lsn)
}

// Start launches the tail loop.
func (r *Replica) Start() { go r.tail() }

// Stop ends the tail loop, waits for it, and closes the local log and
// engine.
func (r *Replica) Stop() {
	close(r.quit)
	<-r.done
	r.log.Close() //nolint:errcheck
	r.eng.Close() //nolint:errcheck
}

func (r *Replica) stopping() bool {
	select {
	case <-r.quit:
		return true
	default:
		return false
	}
}

// sleep waits d or until Stop, whichever first.
func (r *Replica) sleep(d time.Duration) {
	select {
	case <-r.quit:
	case <-time.After(d):
	}
}

// tail is the pull loop: fetch from the leader at the local LSN, persist
// the shipped bytes locally, apply, repeat. Connection failures reconnect
// on the shared jittered-backoff curve; the leader being down degrades the
// replica to serving its last durable state, never to an error.
func (r *Replica) tail() {
	defer close(r.done)
	var cli *wire.Client
	defer func() {
		if cli != nil {
			cli.Close() //nolint:errcheck
		}
	}()
	fails := 0
	for !r.stopping() {
		if cli == nil {
			c, err := wire.Dial(r.cfg.Leader)
			if err != nil {
				fails++
				r.sleep(govern.Backoff(fails-1, 50*time.Millisecond, 2*time.Second))
				continue
			}
			cli = c
		}
		seg, err := cli.FetchWAL(r.LSN(), r.cfg.MaxFetch)
		if err != nil {
			r.cfg.Logf("probserve: replica: fetch at LSN %d: %v", r.LSN(), err)
			cli.Close() //nolint:errcheck
			cli = nil
			fails++
			r.sleep(govern.Backoff(fails-1, 50*time.Millisecond, 2*time.Second))
			continue
		}
		fails = 0
		if err := r.ingest(seg); err != nil {
			// A bad segment (CRC damage in flight, or a leader whose history
			// diverged from ours) must not reach the local log; drop the
			// connection and re-pull rather than persist it.
			r.cfg.Logf("probserve: replica: rejected segment at LSN %d: %v", r.LSN(), err)
			cli.Close() //nolint:errcheck
			cli = nil
			fails++
			r.sleep(govern.Backoff(fails-1, 50*time.Millisecond, 2*time.Second))
			continue
		}
		if len(seg.Records) == 0 {
			r.sleep(r.cfg.Poll) // caught up
		}
	}
}

// ingest verifies one shipped segment, makes it locally durable, and
// applies its committed units. Verification is strict: the segment must
// start exactly at our LSN and decode completely as whole checksummed
// records — a partial decode means damage, and persisting damaged history
// would replicate the corruption we exist to survive.
func (r *Replica) ingest(seg *wire.WALSegment) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if seg.BaseLSN != uint64(r.lsn) {
		return fmt.Errorf("segment starts at %d, want %d", seg.BaseLSN, r.lsn)
	}
	if len(seg.Records) == 0 {
		return nil
	}
	recs, n := wal.Decode(seg.Records)
	if n != int64(len(seg.Records)) || len(recs) == 0 {
		return fmt.Errorf("segment not record-aligned (%d of %d bytes decode)", n, len(seg.Records))
	}
	if err := r.log.AppendBatch(recs); err != nil {
		return fmt.Errorf("local log: %w", err)
	}
	r.applyRecords(recs)
	r.lsn += n
	return nil
}

// applyRecords walks decoded records through the commit-unit buffer. Called
// with r.mu held (or before the tail loop starts).
func (r *Replica) applyRecords(recs []wal.Record) {
	for _, rec := range recs {
		switch rec.Type {
		case wal.TypeStatement:
			r.applyStmt(string(rec.Data))
		case wal.TypeTxnStmt:
			id, sql, err := wal.DecodeTxn(rec.Data)
			if err != nil {
				r.cfg.Logf("probserve: replica: %v", err)
				continue
			}
			r.pending[id] = append(r.pending[id], sql)
		case wal.TypeTxnCommit:
			id, _, err := wal.DecodeTxn(rec.Data)
			if err != nil {
				r.cfg.Logf("probserve: replica: %v", err)
				continue
			}
			for _, sql := range r.pending[id] {
				r.applyStmt(sql)
			}
			delete(r.pending, id)
		default:
			r.cfg.Logf("probserve: replica: skipping unknown WAL record type %d", rec.Type)
		}
	}
}

func (r *Replica) applyStmt(sql string) {
	if err := r.eng.ApplyReplicated(sql); err != nil {
		// A statement that failed on the leader fails identically here —
		// the catalogs agree either way.
		r.cfg.Logf("probserve: replica: statement failed (as it may have on the leader): %v", err)
	}
}

// ApplyReplicated executes one leader-logged statement on a replica's
// ephemeral catalog, bypassing the declared read-only gate — replication
// apply is the one writer a replica has. Refused on persistent engines:
// their writes must go through the WAL path.
func (e *Engine) ApplyReplicated(sql string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cfg.Dir != "" {
		return fmt.Errorf("server: ApplyReplicated is replica-only (engine has a data dir)")
	}
	stmt, err := query.Parse(sql)
	if err != nil {
		return fmt.Errorf("server: replicated statement unparseable: %w", err)
	}
	if _, err := e.db.Exec(sql); err != nil {
		return err
	}
	e.bumpVersionLocked(stmt)
	return nil
}
