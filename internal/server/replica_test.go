package server

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"probdb/internal/wire"
)

// startLeader boots a ship-wal leader over dir on an ephemeral port.
func startLeader(t *testing.T, dir string) *Server {
	t.Helper()
	s, err := New(Config{Addr: "127.0.0.1:0", DataDir: dir, ShipWAL: true, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s
}

// startReplica boots a read replica of leaderAddr over dir.
func startReplica(t *testing.T, dir, leaderAddr string) *Server {
	t.Helper()
	s, err := New(Config{
		Addr: "127.0.0.1:0", DataDir: dir, ReplicaOf: leaderAddr,
		ReplicaPoll: 5 * time.Millisecond, Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s
}

// waitCaughtUp blocks until the replica's LSN reaches the leader's durable
// frontier — the precondition every "replica has everything" assertion and
// every leader-kill needs.
func waitCaughtUp(t *testing.T, leader, replica *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		want, err := leader.Engine().DurableLSN()
		if err != nil {
			t.Fatal(err)
		}
		if replica.Replica().LSN() >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at LSN %d, leader at %d", replica.Replica().LSN(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func mustQuery(t *testing.T, addr, sql string) *wire.Result {
	t.Helper()
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Query(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res
}

// TestReplicaServesLeaderState ships autocommit DML, a committed
// transaction, and planner statements to a replica and checks the replica's
// reads match the leader's — including across a leader checkpoint (a WAL
// generation roll mid-stream).
func TestReplicaServesLeaderState(t *testing.T) {
	leader := startLeader(t, t.TempDir())
	defer leader.Shutdown(context.Background()) //nolint:errcheck
	addr := leader.Addr().String()

	mustQuery(t, addr, "CREATE TABLE s (k INT, v FLOAT UNCERTAIN)")
	for i := 0; i < 10; i++ {
		mustQuery(t, addr, fmt.Sprintf("INSERT INTO s (k, v) VALUES (%d, GAUSSIAN(%d, 2))", i, 10+i))
	}
	// A committed transaction must arrive as one unit.
	{
		c, err := wire.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		for _, sql := range []string{"BEGIN", "INSERT INTO s (k, v) VALUES (100, GAUSSIAN(1, 1))",
			"INSERT INTO s (k, v) VALUES (101, GAUSSIAN(2, 1))", "COMMIT"} {
			if _, err := c.Query(sql); err != nil {
				t.Fatalf("%s: %v", sql, err)
			}
		}
		c.Close()
	}
	// Roll the WAL generation mid-history: the LSN space must carry across.
	mustQuery(t, addr, "CHECKPOINT")
	mustQuery(t, addr, "INSERT INTO s (k, v) VALUES (200, GAUSSIAN(3, 1))")
	mustQuery(t, addr, "ANALYZE s")

	replica := startReplica(t, t.TempDir(), addr)
	defer replica.Shutdown(context.Background()) //nolint:errcheck
	waitCaughtUp(t, leader, replica)

	raddr := replica.Addr().String()
	for _, sql := range []string{
		"SELECT * FROM s WHERE k >= 100",
		"SELECT * FROM s WHERE PROB(v IN [8, 30]) > 0.5 ORDER BY k",
		"SELECT COUNT(k) FROM s",
	} {
		lres := mustQuery(t, addr, sql)
		rres := mustQuery(t, raddr, sql)
		if lres.Table == nil || rres.Table == nil {
			if lres.Affected != rres.Affected {
				t.Fatalf("%s: affected %d vs %d", sql, lres.Affected, rres.Affected)
			}
			continue
		}
		if len(lres.Table.Rows) != len(rres.Table.Rows) {
			t.Fatalf("%s: leader %d rows, replica %d", sql, len(lres.Table.Rows), len(rres.Table.Rows))
		}
	}

	// Writes are refused with the typed read-only error.
	c, err := wire.Dial(raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Query("INSERT INTO s (k, v) VALUES (9, GAUSSIAN(0, 1))")
	var se *wire.ServerError
	if !errors.As(err, &se) || se.Code != wire.ErrReadOnly {
		t.Fatalf("replica write: %v, want ErrReadOnly", err)
	}
}

// TestReplicaCommitUnitGranularity proves an uncommitted transaction's
// statements — durable in the leader's WAL but without a commit marker —
// never become visible on the replica, while everything committed does.
func TestReplicaCommitUnitGranularity(t *testing.T) {
	leader := startLeader(t, t.TempDir())
	defer leader.Shutdown(context.Background()) //nolint:errcheck
	addr := leader.Addr().String()

	mustQuery(t, addr, "CREATE TABLE u (k INT)")
	mustQuery(t, addr, "INSERT INTO u (k) VALUES (1)")
	mustQuery(t, addr, "CREATE TABLE other (k INT)")

	// Open a transaction, write, and leave it hanging: its TxnStmt records
	// group-commit to the log alongside later autocommit work. (The
	// concurrent autocommit write goes to a different table so
	// first-writer-wins does not abort the open transaction.)
	open, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer open.Close()
	if _, err := open.Query("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := open.Query("INSERT INTO u (k) VALUES (666)"); err != nil {
		t.Fatal(err)
	}
	if _, err := open.Query("INSERT INTO u (k) VALUES (667)"); err != nil {
		t.Fatal(err)
	}
	mustQuery(t, addr, "INSERT INTO other (k) VALUES (2)")

	replica := startReplica(t, t.TempDir(), addr)
	defer replica.Shutdown(context.Background()) //nolint:errcheck
	waitCaughtUp(t, leader, replica)

	res := mustQuery(t, replica.Addr().String(), "SELECT * FROM u")
	if len(res.Table.Rows) != 1 {
		t.Fatalf("replica sees %d rows, want 1 (uncommitted txn leaked?)", len(res.Table.Rows))
	}
	if res := mustQuery(t, replica.Addr().String(), "SELECT * FROM other"); len(res.Table.Rows) != 1 {
		t.Fatalf("replica missing committed autocommit row (%d rows)", len(res.Table.Rows))
	}

	// Commit now; the replica applies the whole unit.
	if _, err := open.Query("COMMIT"); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, leader, replica)
	res = mustQuery(t, replica.Addr().String(), "SELECT * FROM u")
	if len(res.Table.Rows) != 3 {
		t.Fatalf("replica sees %d rows after commit, want 3", len(res.Table.Rows))
	}
}

// TestReplicaRestartResumes restarts a replica mid-stream and checks it
// resumes from its local log's LSN rather than refetching from zero, and
// that a buffered-but-uncommitted transaction survives the restart and
// applies when its commit marker finally arrives.
func TestReplicaRestartResumes(t *testing.T) {
	leader := startLeader(t, t.TempDir())
	defer leader.Shutdown(context.Background()) //nolint:errcheck
	addr := leader.Addr().String()

	mustQuery(t, addr, "CREATE TABLE r (k INT)")
	mustQuery(t, addr, "INSERT INTO r (k) VALUES (1)")
	open, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer open.Close()
	if _, err := open.Query("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := open.Query("INSERT INTO r (k) VALUES (42)"); err != nil {
		t.Fatal(err)
	}

	rdir := t.TempDir()
	replica := startReplica(t, rdir, addr)
	waitCaughtUp(t, leader, replica)
	lsnBefore := replica.Replica().LSN()
	if lsnBefore == 0 {
		t.Fatal("replica LSN still 0 after catchup")
	}
	if err := replica.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The commit lands while the replica is down.
	if _, err := open.Query("COMMIT"); err != nil {
		t.Fatal(err)
	}
	mustQuery(t, addr, "INSERT INTO r (k) VALUES (2)")

	replica = startReplica(t, rdir, addr)
	defer replica.Shutdown(context.Background()) //nolint:errcheck
	if got := replica.Replica().LSN(); got < lsnBefore {
		t.Fatalf("restarted replica LSN %d rewound below %d", got, lsnBefore)
	}
	waitCaughtUp(t, leader, replica)
	res := mustQuery(t, replica.Addr().String(), "SELECT * FROM r")
	if len(res.Table.Rows) != 3 {
		t.Fatalf("replica sees %d rows, want 3", len(res.Table.Rows))
	}
}

// TestFetchWALRefusedWithoutShipping: a leader without ship-wal answers
// WALFetch with an error frame, not a hang or a truncated segment.
func TestFetchWALRefusedWithoutShipping(t *testing.T) {
	s, err := New(Config{Addr: "127.0.0.1:0", DataDir: t.TempDir(), Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background()) //nolint:errcheck
	c, err := wire.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.FetchWAL(0, 1024); err == nil {
		t.Fatal("fetch accepted without shipping enabled")
	}
}

// TestShipWALRequiresFullChain: enabling ship-wal on a directory whose
// earlier generations were already garbage-collected must refuse to open —
// shipping a history with holes would silently desynchronize replicas.
func TestShipWALRequiresFullChain(t *testing.T) {
	dir := t.TempDir()
	// Boot without shipping and force a generation roll: gen 0's log is
	// deleted by the checkpoint GC.
	e, err := OpenEngine(EngineConfig{Dir: dir, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute("CREATE TABLE t (k INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute("CHECKPOINT"); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenEngine(EngineConfig{Dir: dir, Parallelism: 1, ShipWAL: true}); err == nil {
		t.Fatal("ship-wal opened over a truncated generation chain")
	}
}
