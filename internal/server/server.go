package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime/debug"
	"sync"
	"syscall"
	"time"

	"probdb/internal/core"
	"probdb/internal/govern"
	"probdb/internal/vfs"
	"probdb/internal/wire"
)

// Config tunes a Server. Zero values take the documented defaults.
type Config struct {
	// Addr is the TCP listen address, e.g. ":7432" (default) or
	// "127.0.0.1:0" for an ephemeral test port.
	Addr string
	// MaxConns bounds concurrently connected sessions; further connections
	// are turned away with an Error frame. Default 64.
	MaxConns int
	// Workers is the number of query executors: at most this many queries
	// run concurrently, regardless of connection count. Default 4.
	Workers int
	// QueueDepth bounds queries queued behind the workers (admission
	// control / backpressure). Default 4×Workers.
	QueueDepth int
	// QueryTimeout bounds one query's total wait: queue admission plus
	// execution. On expiry the session gets an Error frame. A streaming
	// SELECT is cancelled between batches (its operator tree aborts); a
	// non-streamable statement still completes inside the engine but its
	// result is replaced by the timeout error. Default 30s.
	QueryTimeout time.Duration
	// DataDir persists base tables as heap files; empty means ephemeral.
	DataDir string
	// PoolPages is the per-table buffer-pool capacity, in pages. Default 64.
	PoolPages int
	// CheckpointBytes auto-checkpoints when the WAL exceeds this size.
	// Default 1 MiB; negative disables auto-checkpointing.
	CheckpointBytes int64
	// Parallelism is the degree of parallelism for operator execution
	// inside each query: 0 = one worker per logical CPU, 1 = sequential.
	Parallelism int
	// FS overrides the filesystem the engine persists through (tests).
	FS vfs.FS
	// Logf, when set, receives server lifecycle and session errors.
	Logf func(format string, args ...any)

	// MemBudget caps the bytes the server's operators, caches and snapshots
	// may hold at once. 0 disables memory accounting entirely (unless
	// SessionMem or QueryMem is set): the governance path becomes a no-op
	// and execution is byte-identical to an ungoverned server.
	MemBudget int64
	// SessionMem caps one connection's concurrent reservations; 0 means
	// unlimited within the server budget.
	SessionMem int64
	// QueryMem caps one statement's reservations; a query that exceeds it
	// fails alone with a typed budget error. 0 means unlimited within the
	// session budget.
	QueryMem int64
	// AdmitReads/AdmitWrites/AdmitTxns bound the statements per class that
	// may be queued or running at once; excess is rejected immediately with
	// a machine-readable RetryAfter hint. Each defaults to
	// Workers+QueueDepth, matching the old single-queue capacity per class.
	AdmitReads  int
	AdmitWrites int
	AdmitTxns   int
	// RetryAfterHint is the backoff the server suggests to rejected
	// clients. Default 100ms.
	RetryAfterHint time.Duration
	// MinDiskFree, when positive and DataDir is set, arms the disk
	// watchdog: below this many free bytes the engine turns declared
	// read-only, and it recovers once free space reaches twice the
	// threshold.
	MinDiskFree int64
	// DiskPollInterval is the watchdog cadence. Default 2s.
	DiskPollInterval time.Duration
	// DiskFree overrides the free-space probe (tests). Default: statfs on
	// the data directory.
	DiskFree func(dir string) (int64, error)

	// ShipWAL retains every WAL generation and serves WALFetch frames, so
	// replicas can tail this server's log. Must be enabled from the data
	// directory's first boot (see EngineConfig.ShipWAL).
	ShipWAL bool
	// ReplicaOf, when set, runs this server as a read replica of the given
	// leader address: the engine is ephemeral and read-only, fed by a tail
	// loop that pulls the leader's WAL and stores it durably in DataDir
	// (which then holds replica.wal instead of heaps and manifests).
	ReplicaOf string
	// ReplicaPoll is the replica's idle fetch cadence. Default 100ms.
	ReplicaPoll time.Duration
}

func (c *Config) fill() {
	if c.Addr == "" {
		c.Addr = ":7432"
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 64
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.AdmitReads <= 0 {
		c.AdmitReads = c.Workers + c.QueueDepth
	}
	if c.AdmitWrites <= 0 {
		c.AdmitWrites = c.Workers + c.QueueDepth
	}
	if c.AdmitTxns <= 0 {
		c.AdmitTxns = c.Workers + c.QueueDepth
	}
	if c.RetryAfterHint <= 0 {
		c.RetryAfterHint = 100 * time.Millisecond
	}
	if c.DiskPollInterval <= 0 {
		c.DiskPollInterval = 2 * time.Second
	}
	if c.DiskFree == nil {
		c.DiskFree = osDiskFree
	}
}

type task struct {
	sql string
	// ses is the connection's session: it carries the open transaction, so
	// BEGIN on one connection never leaks into another.
	ses *Session
	// conn/bw let the worker stream RowBatch frames straight to the client
	// while it owns the response; the session writes nothing until done.
	conn net.Conn
	bw   *bufio.Writer
	ctx  context.Context
	done chan taskDone // buffered(1): a worker never blocks on an abandoned task
	// sesBud is the connection's memory budget (nil when accounting is
	// off); execute derives a per-query child from it.
	sesBud *govern.Budget
	// enq is when the task entered the worker queue, for queue-wait stats
	// and the queued-too-long check.
	enq time.Time
}

type taskDone struct {
	res      *wire.Result
	streamed bool // RowBatch frames were written; finish with ResultEnd, not Result
	err      error
}

// errClientGone marks a row-batch write that failed because the client's
// connection died mid-stream; the session ends without another write.
var errClientGone = errors.New("server: client disconnected mid-stream")

// errQueueDeadline marks a task whose deadline expired while it was still
// queued: the statement never started executing, so even a write is safe to
// resubmit. It travels to the client as an ErrQueueTimeout frame.
var errQueueDeadline = errors.New("server: deadline expired while queued")

// Server accepts wire-protocol connections and executes their queries on a
// shared Engine through a bounded worker pool.
type Server struct {
	cfg Config
	eng *Engine
	ln  net.Listener

	work chan *task
	quit chan struct{}

	grp    sync.WaitGroup // accept loop + workers + disk watchdog
	sessWG sync.WaitGroup // session goroutines

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	// adm bounds queued+running statements per class; bud is the root of
	// the memory-budget tree (nil when accounting is off).
	adm *govern.Admission
	bud *govern.Budget

	// qmu guards the running-query registry the budget's last-resort
	// reclaimer scans for the largest victim.
	qmu     sync.Mutex
	queries map[*task]*runningQuery

	// rep is non-nil when this server is a read replica: it owns the engine
	// and the WAL tail loop.
	rep *Replica
}

// runningQuery is one registry entry: the query's budget (to size victims)
// and a cause-carrying cancel that aborts its operator tree.
type runningQuery struct {
	bud    *govern.Budget
	cancel context.CancelCauseFunc
}

// New builds a server (opening the data directory, which replays any WAL
// left by a crash) without listening yet.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	var bud *govern.Budget
	if cfg.MemBudget > 0 || cfg.SessionMem > 0 || cfg.QueryMem > 0 {
		bud = govern.NewBudget("server", cfg.MemBudget)
	}
	var (
		eng *Engine
		rep *Replica
		err error
	)
	if cfg.ReplicaOf != "" {
		rep, err = OpenReplica(ReplicaConfig{
			Dir:         cfg.DataDir,
			Leader:      cfg.ReplicaOf,
			Poll:        cfg.ReplicaPoll,
			Parallelism: cfg.Parallelism,
			FS:          cfg.FS,
			Logf:        cfg.Logf,
		})
		if err != nil {
			return nil, err
		}
		eng = rep.Engine()
	} else {
		eng, err = OpenEngine(EngineConfig{
			Dir:             cfg.DataDir,
			PoolPages:       cfg.PoolPages,
			CheckpointBytes: cfg.CheckpointBytes,
			Parallelism:     cfg.Parallelism,
			FS:              cfg.FS,
			Logf:            cfg.Logf,
			Budget:          bud,
			ShipWAL:         cfg.ShipWAL,
		})
		if err != nil {
			return nil, err
		}
	}
	adm := govern.NewAdmission(cfg.AdmitReads, cfg.AdmitWrites, cfg.AdmitTxns, cfg.RetryAfterHint)
	s := &Server{
		cfg: cfg,
		eng: eng,
		rep: rep,
		// Admission bounds in-flight statements to Capacity(), so an
		// admitted send on work can never block.
		work:    make(chan *task, adm.Capacity()),
		quit:    make(chan struct{}),
		conns:   map[net.Conn]struct{}{},
		adm:     adm,
		bud:     bud,
		queries: map[*task]*runningQuery{},
	}
	// Last-resort reclaimer: after the engine has shed its cache (pri 0)
	// and MVCC snapshot (pri 1), cancel the hungriest running query.
	bud.AddReclaimer(2, s.shedLargestQuery)
	return s, nil
}

// shedLargestQuery is the priority-2 reclaimer on the server budget: it
// cancels the running query holding the most reserved memory, with the
// budget shortfall as the cancellation cause. The victim's reservations
// release as its operator tree closes, so the freed estimate is its current
// usage.
func (s *Server) shedLargestQuery(want int64) int64 {
	s.qmu.Lock()
	var victim *runningQuery
	var most int64
	for _, q := range s.queries {
		if u := q.bud.Used(); u > most {
			most, victim = u, q
		}
	}
	s.qmu.Unlock()
	if victim == nil || most == 0 {
		return 0
	}
	victim.cancel(&govern.BudgetError{
		Budget: s.bud.Name(), Requested: want, Used: s.bud.Used(), Limit: s.bud.Limit(),
	})
	return most
}

// Engine exposes the server's engine (for tests).
func (s *Server) Engine() *Engine { return s.eng }

// Replica exposes the server's replica state when running as one (nil on
// leaders), for tests and catchup waits.
func (s *Server) Replica() *Replica { return s.rep }

// Start binds the listener and launches the accept loop and worker pool.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		s.eng.Close() //nolint:errcheck
		return err
	}
	s.ln = ln
	if s.rep != nil {
		s.rep.Start()
	}
	for i := 0; i < s.cfg.Workers; i++ {
		s.grp.Add(1)
		go s.worker()
	}
	s.grp.Add(1)
	go s.acceptLoop()
	if s.cfg.DataDir != "" && s.cfg.MinDiskFree > 0 {
		s.grp.Add(1)
		go s.diskWatchdog()
	}
	s.cfg.Logf("probserve: listening on %s (workers=%d queue=%d max-conns=%d mem-budget=%d)",
		ln.Addr(), s.cfg.Workers, s.cfg.QueueDepth, s.cfg.MaxConns, s.cfg.MemBudget)
	return nil
}

// Addr returns the bound listen address (after Start).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Shutdown stops accepting connections, lets in-flight queries drain and
// their results flush to clients, then closes the engine. If ctx expires
// first, remaining connections are severed.
func (s *Server) Shutdown(ctx context.Context) error {
	close(s.quit)
	s.ln.Close() //nolint:errcheck

	// Wake sessions idle in ReadFrame; sessions mid-query finish writing
	// their response first, then observe the deadline/quit and exit.
	s.mu.Lock()
	for c := range s.conns {
		c.SetReadDeadline(time.Now()) //nolint:errcheck
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() { s.sessWG.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close() //nolint:errcheck
		}
		s.mu.Unlock()
		<-drained
	}

	close(s.work)
	s.grp.Wait()
	var err error
	if s.rep != nil {
		s.rep.Stop() // closes the tail loop, the local log, and the engine
	} else {
		err = s.eng.Close()
	}
	s.cfg.Logf("probserve: shut down")
	return err
}

func (s *Server) stopping() bool {
	select {
	case <-s.quit:
		return true
	default:
		return false
	}
}

func (s *Server) acceptLoop() {
	defer s.grp.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.stopping() {
				return
			}
			s.cfg.Logf("probserve: accept: %v", err)
			return
		}
		s.mu.Lock()
		if len(s.conns) >= s.cfg.MaxConns {
			s.mu.Unlock()
			s.refuse(conn)
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.sessWG.Add(1)
		go s.session(conn)
	}
}

func (s *Server) refuse(conn net.Conn) {
	conn.SetWriteDeadline(time.Now().Add(2 * time.Second))                         //nolint:errcheck
	wire.WriteFrame(conn, wire.FrameError, []byte("server: too many connections")) //nolint:errcheck
	conn.Close()                                                                   //nolint:errcheck
}

// session serves one connection: a read loop over frames, answering Pings
// inline and funnelling queries through the worker pool.
func (s *Server) session(conn net.Conn) {
	defer s.sessWG.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close() //nolint:errcheck
	}()
	// Backstop: a bug in the session's own frame handling must cost one
	// connection, never the whole server.
	defer func() {
		if r := recover(); r != nil {
			s.cfg.Logf("probserve: session panicked: %v\n%s", r, debug.Stack())
		}
	}()

	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	ses := s.eng.NewSession()
	defer ses.Close() // roll back a transaction the client left open
	// One budget per connection; queries charge grandchildren of it. With
	// correctly paired operators it drains to zero on its own, but Drain is
	// kept as a leak backstop.
	var sesBud *govern.Budget
	if s.bud != nil {
		sesBud = s.bud.Child("session", s.cfg.SessionMem)
	}
	defer sesBud.Drain()
	for {
		if s.stopping() {
			return
		}
		ft, payload, err := wire.ReadFrame(br)
		if err != nil {
			if !isDisconnect(err) && !s.stopping() {
				s.writeFrame(conn, bw, wire.FrameError, []byte("protocol: "+err.Error()))
			}
			return
		}
		switch ft {
		case wire.FramePing:
			if !s.writeFrame(conn, bw, wire.FramePong, nil) {
				return
			}
		case wire.FrameQuery:
			if !s.handleQuery(conn, bw, ses, sesBud, string(payload)) {
				return
			}
		case wire.FrameWALFetch:
			if !s.handleWALFetch(conn, bw, payload) {
				return
			}
		default:
			if !s.writeFrame(conn, bw, wire.FrameError,
				[]byte(fmt.Sprintf("protocol: unexpected %v frame", ft))) {
				return
			}
		}
	}
}

// handleQuery submits the statement to the worker pool and relays the
// outcome. While the query runs, the worker owns the connection's write
// side (it streams RowBatch frames as the operator tree produces them); the
// session waits for completion and writes the terminal frame — ResultEnd
// after a streamed result, Result otherwise, Error on failure (legal even
// after batches have gone out). It reports whether the session should
// continue.
func (s *Server) handleQuery(conn net.Conn, bw *bufio.Writer, ses *Session, sesBud *govern.Budget, sql string) bool {
	// HEALTH bypasses admission and the worker pool: it must answer from
	// the session goroutine precisely when every slot is occupied.
	if isHealthSQL(sql) {
		return s.writeFrame(conn, bw, wire.FrameResult, wire.EncodeResult(s.healthResult()))
	}

	class := govern.ClassifySQL(sql, ses.InTxn())
	if err := s.adm.Acquire(class); err != nil {
		return s.writeFrame(conn, bw, wire.FrameError, s.errorPayload(err))
	}
	defer s.adm.Release(class)

	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.QueryTimeout)
	defer cancel()
	tk := &task{
		sql: sql, ses: ses, sesBud: sesBud, conn: conn, bw: bw,
		ctx: ctx, enq: time.Now(), done: make(chan taskDone, 1),
	}

	// Admission caps in-flight statements to the channel's capacity, so
	// this send cannot block on a full queue; the quit case only covers a
	// shutdown racing the submit.
	select {
	case s.work <- tk:
	case <-s.quit:
		return s.writeFrame(conn, bw, wire.FrameError, []byte("server: shutting down"))
	}

	// A submitted query must drain before the session touches the
	// connection again — the worker may be mid-frame. The timeout fires
	// through ctx, which aborts a streaming operator tree between batches;
	// a non-streamable statement runs to completion as before. (No quit
	// case either: the worker pool stays alive through Shutdown until
	// sessions finish.)
	d := <-tk.done
	if d.err != nil {
		if errors.Is(d.err, errClientGone) {
			return false
		}
		ok := s.writeFrame(conn, bw, wire.FrameError, s.errorPayload(d.err))
		var pe *panicError
		if errors.As(d.err, &pe) {
			// The Error frame is on the wire; now drop this connection —
			// and only this connection.
			return false
		}
		return ok
	}
	if d.streamed {
		return s.writeFrame(conn, bw, wire.FrameResultEnd, wire.EncodeResultEnd(d.res))
	}
	return s.writeFrame(conn, bw, wire.FrameResult, wire.EncodeResult(d.res))
}

// handleWALFetch answers a replica's pull from the session goroutine —
// like HEALTH it must not queue behind the worker pool, or a busy leader
// would stall its own replicas. The engine snapshot under its mutex is
// brief; the file read runs lock-free.
func (s *Server) handleWALFetch(conn net.Conn, bw *bufio.Writer, payload []byte) bool {
	from, max, err := wire.DecodeWALFetch(payload)
	if err != nil {
		return s.writeFrame(conn, bw, wire.FrameError,
			wire.EncodeError(wire.ErrGeneric, 0, "protocol: "+err.Error()))
	}
	seg, err := s.eng.FetchWAL(from, max)
	if err != nil {
		return s.writeFrame(conn, bw, wire.FrameError, wire.EncodeError(wire.ErrGeneric, 0, err.Error()))
	}
	return s.writeFrame(conn, bw, wire.FrameWALSegment, wire.EncodeWALSegment(seg))
}

// errorPayload renders an execution error as a wire error frame, mapping
// the typed governance refusals to machine-readable codes (all of which
// mean "never executed — safe to resubmit") and everything else to a plain
// generic error.
func (s *Server) errorPayload(err error) []byte {
	var (
		qf *govern.QueueFullError
		be *govern.BudgetError
		ro *ReadOnlyError
	)
	switch {
	case errors.Is(err, errQueueDeadline):
		return wire.EncodeError(wire.ErrQueueTimeout, s.cfg.RetryAfterHint,
			fmt.Sprintf("server: queued longer than %v, dropped unexecuted", s.cfg.QueryTimeout))
	case errors.As(err, &qf):
		return wire.EncodeError(wire.ErrOverloaded, qf.RetryAfter, err.Error())
	case errors.As(err, &be):
		return wire.EncodeError(wire.ErrBudget, s.cfg.RetryAfterHint, err.Error())
	case errors.As(err, &ro):
		return wire.EncodeError(wire.ErrReadOnly, s.cfg.RetryAfterHint, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		return wire.EncodeError(wire.ErrGeneric, 0,
			fmt.Sprintf("server: query timeout after %v", s.cfg.QueryTimeout))
	}
	return wire.EncodeError(wire.ErrGeneric, 0, err.Error())
}

// writeFrame writes one response frame with a write deadline; false means
// the connection is gone and the session should end.
func (s *Server) writeFrame(conn net.Conn, bw *bufio.Writer, ft wire.FrameType, payload []byte) bool {
	conn.SetWriteDeadline(time.Now().Add(s.cfg.QueryTimeout)) //nolint:errcheck
	if err := wire.WriteFrame(bw, ft, payload); err != nil {
		return false
	}
	if err := bw.Flush(); err != nil {
		return false
	}
	return true
}

func (s *Server) worker() {
	defer s.grp.Done()
	for tk := range s.work {
		wait := time.Since(tk.enq)
		// A deadline that expired while the task sat in the queue means the
		// statement never started; report that distinctly so the client
		// knows a blind resubmit is safe even for writes.
		if tk.ctx.Err() != nil {
			tk.done <- taskDone{err: errQueueDeadline}
			continue
		}
		res, streamed, err := s.execute(tk)
		if res != nil {
			res.Stats.QueueWaitMicros = uint64(wait.Microseconds())
			res.Stats.Rejections = s.adm.Rejections()
			res.Stats.ShedBytes = uint64(s.bud.ShedBytes())
		}
		tk.done <- taskDone{res: res, streamed: streamed, err: err}
	}
}

// panicError is a query that panicked inside the engine, converted to an
// ordinary error so the worker — and with it every other session — survives.
// The session that sent the query gets it as an Error frame and is then
// disconnected, since engine state touched by a half-executed statement is
// suspect from that client's point of view.
type panicError struct {
	val   any
	stack []byte
}

func (p *panicError) Error() string {
	return fmt.Sprintf("server: query panicked: %v", p.val)
}

// execute runs one statement through the streaming engine entry point,
// writing each result batch to the task's connection as the operator tree
// produces it, and converting a panic anywhere under the engine into a
// *panicError instead of crashing the process. streamed reports whether any
// RowBatch frame went out — after that only ResultEnd or Error may follow.
func (s *Server) execute(tk *task) (res *wire.Result, streamed bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			pe := &panicError{val: r, stack: debug.Stack()}
			s.cfg.Logf("probserve: query %q panicked: %v\n%s", tk.sql, r, pe.stack)
			res, err = nil, pe
		}
	}()
	ctx, cancel := context.WithCancelCause(tk.ctx)
	defer cancel(nil)
	var qb *govern.Budget
	if tk.sesBud != nil {
		// The query's own budget rides the context down to the operators;
		// registering it makes this query a candidate victim for the
		// server budget's last-resort reclaimer.
		qb = tk.sesBud.Child("query", s.cfg.QueryMem)
		ctx = govern.WithBudget(ctx, qb)
		s.qmu.Lock()
		s.queries[tk] = &runningQuery{bud: qb, cancel: cancel}
		s.qmu.Unlock()
		defer func() {
			s.qmu.Lock()
			delete(s.queries, tk)
			s.qmu.Unlock()
			// Operators release what they charged as the tree closes;
			// Drain is the backstop that keeps a leak from wedging the
			// server budget forever.
			if leaked := qb.Drain(); leaked != 0 {
				s.cfg.Logf("probserve: query %q leaked %d budget bytes (reclaimed)", tk.sql, leaked)
			}
		}()
	}
	var seq uint64
	sink := func(hdr *core.Table, batch []*core.Tuple) error {
		b := &wire.RowBatch{Seq: seq, Rows: wire.RowsOf(hdr, batch)}
		if seq == 0 {
			b.Name = hdr.Name
			b.Cols = wire.ColumnsOf(hdr)
		}
		if !s.writeFrame(tk.conn, tk.bw, wire.FrameRowBatch, wire.EncodeRowBatch(b)) {
			return errClientGone
		}
		seq++
		streamed = true
		return nil
	}
	res, engStreamed, err := tk.ses.ExecuteStream(ctx, tk.sql, sink)
	if err != nil && ctx.Err() != nil {
		// A cancellation injected by the shed reclaimer carries the budget
		// shortfall as its cause; surface that instead of a bare
		// "context canceled".
		var be *govern.BudgetError
		if cause := context.Cause(ctx); errors.As(cause, &be) {
			err = cause
		}
	}
	streamed = streamed || (engStreamed && err == nil)
	return res, streamed, err
}

func isDisconnect(err error) bool {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	// Read deadlines (set during Shutdown to wake idle sessions) and reset
	// connections also mean the session is over, not a protocol error.
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE)
}
