package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"probdb/internal/wire"
)

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestServerEndToEnd is the subsystem's acceptance test: 16 concurrent
// clients against one server, each creating its own table, inserting
// Gaussian pdfs, and selecting with PROB thresholds; then a graceful
// shutdown that leaves no goroutines behind.
func TestServerEndToEnd(t *testing.T) {
	before := runtime.NumGoroutine()
	s := startServer(t, Config{
		Workers:      4,
		MaxConns:     32,
		QueryTimeout: 30 * time.Second,
		DataDir:      t.TempDir(),
		PoolPages:    16,
	})
	addr := s.Addr().String()

	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			errs <- runClient(addr, id)
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	// All 16 tables exist server-side before shutdown.
	if got := len(s.Engine().DB().TableNames()); got != clients {
		t.Fatalf("tables in catalog: %d, want %d", got, clients)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// A connection after shutdown must be refused.
	if conn, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		conn.Close()
		t.Fatal("post-shutdown dial succeeded")
	}

	// Zero goroutine leaks: give runtime-internal goroutines a moment to
	// unwind, then compare against the pre-server baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// runClient drives one session: ping, private CREATE/INSERT/SELECT with a
// PROB threshold, checking both the row content and that page-read stats
// survive the network boundary.
func runClient(addr string, id int) error {
	c, err := wire.Dial(addr)
	if err != nil {
		return fmt.Errorf("client %d: dial: %w", id, err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		return fmt.Errorf("client %d: ping: %w", id, err)
	}

	table := fmt.Sprintf("readings%d", id)
	if _, err := c.Query(fmt.Sprintf("CREATE TABLE %s (rid INT, value FLOAT UNCERTAIN)", table)); err != nil {
		return fmt.Errorf("client %d: create: %w", id, err)
	}
	res, err := c.Query(fmt.Sprintf(
		"INSERT INTO %s (rid, value) VALUES (1, GAUSSIAN(20, 5)), (2, GAUSSIAN(25, 4)), (3, GAUSSIAN(13, 1))", table))
	if err != nil {
		return fmt.Errorf("client %d: insert: %w", id, err)
	}
	if res.Affected != 3 {
		return fmt.Errorf("client %d: insert affected %d, want 3", id, res.Affected)
	}
	if res.Stats.WALBytes == 0 {
		return fmt.Errorf("client %d: insert stats report no WAL bytes: %+v", id, res.Stats)
	}

	// Checkpoint so the table is clean: a dirty table would route the SELECT
	// through the in-memory MVCC snapshot, which does no page I/O at all.
	if _, err := c.Query("CHECKPOINT"); err != nil {
		return fmt.Errorf("client %d: checkpoint: %w", id, err)
	}

	// The Fig. 5-style accounting: flooring at value < 20 drops sensor 2,
	// and the Result frame carries this query's own page reads.
	res, err = c.Query(fmt.Sprintf(
		"SELECT rid FROM %s WHERE value < 20 AND PROB(value) > 0.4 ORDER BY PROB(value) DESC", table))
	if err != nil {
		return fmt.Errorf("client %d: select: %w", id, err)
	}
	if res.Table == nil || len(res.Table.Rows) != 2 {
		return fmt.Errorf("client %d: select rows %v, want 2", id, res.Table)
	}
	if res.Stats.Rows != 2 {
		return fmt.Errorf("client %d: stats rows %d, want 2", id, res.Stats.Rows)
	}
	if res.Stats.PageReads == 0 {
		return fmt.Errorf("client %d: select stats report no page reads: %+v", id, res.Stats)
	}

	// A bad statement yields a server error, not a dead connection.
	if _, err := c.Query("SELECT * FROM no_such_table"); err == nil {
		return fmt.Errorf("client %d: bad query succeeded", id)
	} else {
		var se *wire.ServerError
		if !errors.As(err, &se) {
			return fmt.Errorf("client %d: bad query error is not a ServerError: %v", id, err)
		}
	}
	// The session survives the error.
	if err := c.Ping(); err != nil {
		return fmt.Errorf("client %d: ping after error: %w", id, err)
	}
	return nil
}

// TestServerQueryPanic: a panicking query costs its own connection an Error
// frame and a disconnect — not the server, not other sessions.
func TestServerQueryPanic(t *testing.T) {
	s := startServer(t, Config{Workers: 2})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	s.Engine().execHook = func(sql string) {
		if strings.Contains(sql, "boom_trigger") {
			panic("injected query panic")
		}
	}
	addr := s.Addr().String()

	victim, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	bystander, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer bystander.Close()
	if err := bystander.Ping(); err != nil {
		t.Fatal(err)
	}

	_, err = victim.Query("SELECT * FROM boom_trigger")
	var se *wire.ServerError
	if !errors.As(err, &se) || !strings.Contains(se.Msg, "panicked") {
		t.Fatalf("panicking query error = %v, want ServerError mentioning the panic", err)
	}
	// The panicking session's connection is closed afterwards…
	victim.SetCallTimeout(2 * time.Second)
	if err := victim.Ping(); err == nil {
		t.Fatal("connection survived a panicking query")
	}
	// …while the rest of the server keeps serving.
	if err := bystander.Ping(); err != nil {
		t.Fatalf("bystander session broken by another session's panic: %v", err)
	}
	if _, err := bystander.Query("SHOW TABLES"); err != nil {
		t.Fatalf("bystander query after panic: %v", err)
	}
}

// TestServerMaxConns: the connection cap turns extra clients away with an
// Error frame instead of hanging them.
func TestServerMaxConns(t *testing.T) {
	s := startServer(t, Config{MaxConns: 2, DataDir: ""})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	addr := s.Addr().String()

	c1, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// Prove both sessions are registered before the third dial.
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Ping(); err != nil {
		t.Fatal(err)
	}

	c3, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if err := c3.Ping(); err == nil {
		t.Fatal("third connection admitted past MaxConns=2")
	} else {
		var se *wire.ServerError
		if !errors.As(err, &se) {
			t.Fatalf("refusal error: %v", err)
		}
	}
}

// TestServerQueryTimeout: a statement that outlives the per-query budget
// returns a timeout error and the session keeps working.
func TestServerQueryTimeout(t *testing.T) {
	s := startServer(t, Config{Workers: 1, QueueDepth: 1, QueryTimeout: 150 * time.Millisecond})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	addr := s.Addr().String()

	// Occupy the single worker with a statement large enough to exceed the
	// timeout: a MONTE CARLO-free engine executes fast, so instead pile up
	// queued work from a second session and let queue admission time out.
	hog, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer hog.Close()
	if _, err := hog.Query("CREATE TABLE t (k INT, x FLOAT UNCERTAIN)"); err != nil {
		t.Fatal(err)
	}
	// A self-cross-join with enough rows keeps one worker busy for a while.
	for i := 0; i < 64; i++ {
		if _, err := hog.Query(fmt.Sprintf("INSERT INTO t (k, x) VALUES (%d, GAUSSIAN(%d, 2))", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := hog.Query("SELECT COUNT(*) FROM t a, t b, t c WHERE a.k < b.k AND b.k < c.k")
		done <- err
	}()

	// While the worker grinds, a second session's query waits; either queue
	// admission or execution wait must end in a timeout error frame.
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Query("SHOW TABLES")
	if err == nil {
		// The hog may have finished first on a fast machine; accept success
		// only if it really was fast.
		if time.Since(start) > time.Second {
			t.Fatal("slow query succeeded without timing out")
		}
	} else {
		var se *wire.ServerError
		if !errors.As(err, &se) {
			t.Fatalf("timeout error: %v", err)
		}
	}
	<-done // let the hog finish before shutdown
}
