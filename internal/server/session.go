package server

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"probdb/internal/core"
	"probdb/internal/exec"
	"probdb/internal/query"
	"probdb/internal/storage"
	"probdb/internal/txn"
	"probdb/internal/wal"
	"probdb/internal/wire"
)

// Session is one client's statement context on the engine: it carries the
// open transaction (if any) and serializes the connection's statements.
// Sessions are independent — each network connection holds one, and the
// engine itself owns a default session for embedded callers — so explicit
// transactions on one connection never block statements on another beyond
// the engine's own commit critical section.
//
// Transactions are snapshot-isolated with first-writer-wins conflict
// detection. BEGIN clones the catalog into a private overlay (cloned tables
// over a cloned base-pdf registry — cheap, sharing tuple pointers and
// distributions) and records every table's commit version. In-transaction
// INSERT/DELETE execute against the overlay (read-your-writes) and are
// buffered as SQL; SELECT reads the overlay. COMMIT re-validates the
// written tables' versions under the engine mutex — if another writer
// committed first the transaction aborts with txn.ConflictError — then
// appends all statements plus a commit marker to the WAL as one group-
// commit batch, re-executes them against the authoritative catalog (the
// version check guarantees the same outcome the overlay saw), and acks
// after the batch's fsync. ROLLBACK just drops the overlay.
type Session struct {
	e  *Engine
	mu sync.Mutex
	tx *sessionTxn
}

// sessionTxn is one open transaction.
type sessionTxn struct {
	id       uint64
	db       *query.DB         // private overlay catalog
	versions map[string]uint64 // commit versions observed at BEGIN
	stmts    []string          // buffered mutations, in execution order
	parsed   []query.Stmt
	written  map[string]bool
	affected int
	// aborted poisons the transaction after an in-transaction statement
	// error: the overlay may have partially applied it, so the only honest
	// exits are ROLLBACK (or a COMMIT that reports the abort and rolls
	// back), never a commit of half a statement.
	aborted error
}

// NewSession returns a fresh session. Call Close when the connection ends —
// it rolls back any transaction left open.
func (e *Engine) NewSession() *Session { return &Session{e: e} }

// Close rolls back an open transaction and retires the session.
func (s *Session) Close() {
	s.mu.Lock()
	s.tx = nil
	s.mu.Unlock()
}

// InTxn reports whether the session has an open transaction.
func (s *Session) InTxn() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tx != nil
}

// Execute runs one statement in this session's context.
func (s *Session) Execute(sql string) (*wire.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if h := s.e.execHook; h != nil {
		h(sql)
	}
	return s.executeLocked(sql)
}

func (s *Session) executeLocked(sql string) (*wire.Result, error) {
	if isCheckpointSQL(sql) {
		if s.tx != nil {
			return nil, fmt.Errorf("server: CHECKPOINT is not allowed inside a transaction")
		}
		return s.e.execCheckpoint()
	}
	if isHealthSQL(sql) {
		return s.e.execHealth()
	}
	stmt, err := query.Parse(sql)
	if err != nil {
		return nil, err
	}
	switch stmt.(type) {
	case query.Begin:
		return s.beginLocked()
	case query.Commit:
		return s.commitLocked()
	case query.Rollback:
		return s.rollbackLocked()
	}
	if s.tx == nil {
		return s.e.execParsed(sql, stmt)
	}
	return s.execInTxnLocked(sql, stmt)
}

// ExecuteStream runs one statement like Execute, but streams a plain
// SELECT's result batches to sink as the operator tree produces them — the
// first batch reaches the sink before the scan has finished, and the engine
// never materializes the result relation. It returns streamed=true when the
// rows went through the sink; the Result then carries only the trailing
// message/affected-count/stats (its Table is nil). Statements without
// streamable output — DDL, DML, aggregates, EXPLAIN, CHECKPOINT, and the
// transaction-control statements — fall back to the Execute path
// (streamed=false, sink never called) and return a full Result.
//
// A snapshot-routed SELECT (dirty tables, no transaction) and every
// in-transaction SELECT stream without holding the engine mutex: a slow
// consumer no longer blocks writers. Only the clean-table cold-scan path
// still streams under the engine lock, preserving its per-query page-I/O
// accounting. ctx aborts the operator tree between batches; sink errors do
// the same and come back wrapped.
func (s *Session) ExecuteStream(ctx context.Context, sql string, sink func(hdr *core.Table, batch []*core.Tuple) error) (*wire.Result, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if h := s.e.execHook; h != nil {
		h(sql)
	}
	if isCheckpointSQL(sql) || isHealthSQL(sql) {
		res, err := s.executeLocked(sql)
		return res, false, err
	}
	stmt, err := query.Parse(sql)
	if err != nil {
		return nil, false, err
	}
	sel, ok := stmt.(query.SelectStmt)
	if !ok || sel.Agg != "" {
		var res *wire.Result
		switch stmt.(type) {
		case query.Begin:
			res, err = s.beginLocked()
		case query.Commit:
			res, err = s.commitLocked()
		case query.Rollback:
			res, err = s.rollbackLocked()
		default:
			if s.tx == nil {
				res, err = s.e.execParsed(sql, stmt)
			} else {
				res, err = s.execInTxnLocked(sql, stmt)
			}
		}
		return res, false, err
	}
	if s.tx != nil {
		if s.tx.aborted != nil {
			return nil, true, s.abortedErrLocked()
		}
		start := time.Now()
		qr, qerr := s.tx.db.ExecStream(ctx, sql, sink)
		if qerr != nil {
			return nil, true, qerr
		}
		res := s.txnResultLocked(start, qr)
		res.Stats.Rows = uint64(qr.Affected)
		return res, true, nil
	}
	return s.e.execSelectStream(ctx, sql, sel, sink)
}

// beginLocked opens a transaction: a catalog overlay plus the version
// vector the commit-time conflict check compares against.
func (s *Session) beginLocked() (*wire.Result, error) {
	if s.tx != nil {
		return nil, fmt.Errorf("server: a transaction is already in progress")
	}
	e := s.e
	start := time.Now()
	e.mu.Lock()
	reg := e.db.Registry().Clone()
	odb := query.OpenWith(reg)
	odb.SetParallelism(e.cfg.Parallelism)
	for _, name := range e.db.TableNames() {
		if t, ok := e.db.Table(name); ok {
			odb.Attach(t.CloneInto(reg)) //nolint:errcheck // names are unique
		}
	}
	versions := make(map[string]uint64, len(e.ver))
	for k, v := range e.ver {
		versions[k] = v
	}
	id := e.nextTxn
	e.nextTxn++
	e.mu.Unlock()
	s.tx = &sessionTxn{id: id, db: odb, versions: versions, written: map[string]bool{}}
	return &wire.Result{
		Message: fmt.Sprintf("transaction %d started", id),
		InTxn:   true,
		Stats:   wire.Stats{LatencyMicros: uint64(time.Since(start).Microseconds())},
	}, nil
}

// rollbackLocked discards the overlay. Nothing else holds transaction
// state, so this never touches the engine.
func (s *Session) rollbackLocked() (*wire.Result, error) {
	if s.tx == nil {
		return nil, fmt.Errorf("server: no transaction in progress")
	}
	id := s.tx.id
	s.tx = nil
	return &wire.Result{Message: fmt.Sprintf("transaction %d rolled back", id)}, nil
}

func (s *Session) abortedErrLocked() error {
	return fmt.Errorf("server: transaction %d is aborted by an earlier error (%v); ROLLBACK to continue", s.tx.id, s.tx.aborted)
}

// txnResultLocked packages an in-transaction statement outcome (no engine
// counters: the overlay's scratch registry isn't the tracked one).
func (s *Session) txnResultLocked(start time.Time, qr *query.Result) *wire.Result {
	res := &wire.Result{
		Message:  qr.Message,
		Affected: uint64(qr.Affected),
		InTxn:    true,
		Stats: wire.Stats{
			LatencyMicros:    uint64(time.Since(start).Microseconds()),
			IndexProbes:      qr.Planner.IndexProbes,
			IndexPruned:      qr.Planner.IndexPruned,
			PlannerFallbacks: qr.Planner.PlannerFallbacks,
		},
	}
	attachTable(res, qr)
	return res
}

// execInTxnLocked runs one statement inside the open transaction: reads on
// the overlay, INSERT/DELETE on the overlay plus the commit buffer, and
// everything else rejected (DDL would need catalog-level undo).
func (s *Session) execInTxnLocked(sql string, stmt query.Stmt) (*wire.Result, error) {
	t := s.tx
	if t.aborted != nil {
		return nil, s.abortedErrLocked()
	}
	start := time.Now()
	var table string
	switch st := stmt.(type) {
	case query.SelectStmt, query.Explain, query.ShowTables, query.Describe:
		qr, err := t.db.Exec(sql)
		if err != nil {
			return nil, err
		}
		return s.txnResultLocked(start, qr), nil
	case query.Insert:
		table = st.Table
	case query.Delete:
		table = st.Table
	default:
		return nil, fmt.Errorf("server: only INSERT, DELETE and SELECT are allowed inside a transaction (got %T); COMMIT or ROLLBACK first", stmt)
	}
	// Writes against quarantined tables must not reach the commit buffer:
	// their disk state is unknown.
	e := s.e
	e.mu.Lock()
	err := e.precheckLocked(stmt)
	e.mu.Unlock()
	if err != nil {
		return nil, err
	}
	qr, err := t.db.Exec(sql)
	if err != nil {
		// The overlay may hold a partial application (a multi-row INSERT
		// that failed midway): poison the transaction rather than commit
		// a state no replay could reproduce.
		t.aborted = err
		return nil, fmt.Errorf("server: transaction %d aborted: %w", t.id, err)
	}
	t.stmts = append(t.stmts, sql)
	t.parsed = append(t.parsed, stmt)
	t.written[table] = true
	t.affected += qr.Affected
	return s.txnResultLocked(start, qr), nil
}

// commitLocked publishes the transaction. Under the engine mutex it
// validates the written tables' versions (first-writer-wins), enqueues all
// buffered statements plus the commit marker as ONE group-commit batch, and
// re-executes the statements against the authoritative catalog; visibility
// is immediate, but the client is acked only after the batch's fsync.
func (s *Session) commitLocked() (*wire.Result, error) {
	t := s.tx
	if t == nil {
		return nil, fmt.Errorf("server: no transaction in progress")
	}
	s.tx = nil
	if t.aborted != nil {
		return nil, fmt.Errorf("server: transaction %d was aborted by an earlier error (%v); rolled back", t.id, t.aborted)
	}
	e := s.e
	if len(t.stmts) == 0 {
		return &wire.Result{Message: fmt.Sprintf("transaction %d committed (read-only)", t.id)}, nil
	}

	e.mu.Lock()
	d := e.beginStatsLocked()
	if e.cfg.Dir != "" && e.broken != nil {
		err := fmt.Errorf("server: engine is read-only after a durability failure: %w", e.broken)
		e.mu.Unlock()
		return nil, err
	}
	if e.readOnly != nil {
		err := e.readOnly
		e.mu.Unlock()
		return nil, err
	}
	names := make([]string, 0, len(t.written))
	for n := range t.written {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		if e.ver[name] != t.versions[name] {
			e.conflicts.Add(1)
			e.mu.Unlock()
			return nil, &txn.ConflictError{Table: name}
		}
	}
	var tk *txn.Ticket
	if e.cfg.Dir != "" {
		recs := make([]wal.Record, 0, len(t.stmts)+1)
		for _, q := range t.stmts {
			recs = append(recs, wal.Record{Type: wal.TypeTxnStmt, Data: wal.EncodeTxn(t.id, q)})
		}
		recs = append(recs, wal.Record{Type: wal.TypeTxnCommit, Data: wal.EncodeTxn(t.id, "")})
		tk = e.gc.Enqueue(recs)
	}
	// Re-execute against the authoritative catalog. The version check
	// guarantees the written tables are exactly as the overlay saw them at
	// BEGIN, so these replays land the overlay's outcome. A failure here is
	// a bug, but it is handled the way recovery replay handles it — log,
	// keep going — so memory and a post-crash replay of this batch agree.
	var applyErr error
	for i, q := range t.stmts {
		if _, err := e.applyLocked(q, t.parsed[i]); err != nil {
			e.cfg.Logf("probserve: commit txn %d: statement %q failed unexpectedly: %v", t.id, q, err)
			if applyErr == nil {
				applyErr = err
			}
		}
	}
	e.verSeq++
	for _, n := range names {
		e.ver[n] = e.verSeq
	}
	e.snapStale = true
	if e.cfg.Dir != "" {
		e.maybeCheckpointLocked()
	}
	qr := &query.Result{
		Message:  fmt.Sprintf("transaction %d committed (%d statements)", t.id, len(t.stmts)),
		Affected: t.affected,
	}
	res := e.finishStatsLocked(d, qr, storage.Stats{}, exec.CacheStats{})
	e.mu.Unlock()

	if tk != nil {
		ack, werr := tk.Wait()
		if werr != nil {
			e.latchBroken(werr)
			return nil, fmt.Errorf("server: transaction %d not durable: %w", t.id, werr)
		}
		res.Stats.LatencyMicros = uint64(time.Since(d.start).Microseconds())
		if ack.Led {
			res.Stats.WALFsyncs = 1
		}
		res.Stats.WALGroupSize = uint64(ack.GroupSize)
	}
	if applyErr != nil {
		return nil, fmt.Errorf("server: transaction %d commit applied with errors: %w", t.id, applyErr)
	}
	return res, nil
}
