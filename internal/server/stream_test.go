package server

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"probdb/internal/pipe"
	"probdb/internal/wire"
)

// fillTable creates one table and bulk-inserts n rows through the client.
func fillTable(t *testing.T, c *wire.Client, table string, n int) {
	t.Helper()
	if _, err := c.Query(fmt.Sprintf("CREATE TABLE %s (k INT, x FLOAT UNCERTAIN)", table)); err != nil {
		t.Fatal(err)
	}
	const chunk = 100
	for at := 0; at < n; at += chunk {
		var b strings.Builder
		fmt.Fprintf(&b, "INSERT INTO %s (k, x) VALUES ", table)
		for i := at; i < at+chunk && i < n; i++ {
			if i > at {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "(%d, GAUSSIAN(%d, 2))", i, i%50)
		}
		if _, err := c.Query(b.String()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestServerStreamsSelect: a SELECT over many rows arrives as multiple
// RowBatch frames — the first one before the result is complete — followed
// by a ResultEnd whose stats cover the whole query.
func TestServerStreamsSelect(t *testing.T) {
	s := startServer(t, Config{Workers: 2})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	c, err := wire.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 900
	fillTable(t, c, "readings", n)

	st, err := c.QueryStream("SELECT k, x FROM readings")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Columns()) != 2 {
		t.Fatalf("columns: %v", st.Columns())
	}
	rows, batches := 0, 0
	for {
		b, err := st.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		rows += len(b)
		batches++
	}
	if rows != n {
		t.Fatalf("streamed %d rows, want %d", rows, n)
	}
	if batches < 2 {
		t.Fatalf("result arrived in %d batch(es); want incremental delivery", batches)
	}
	res, err := st.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != n || res.Stats.Rows != n {
		t.Fatalf("trailing stats: affected=%d rows=%d, want %d", res.Affected, res.Stats.Rows, n)
	}

	// The draining Query sees the identical relation.
	full, err := c.Query("SELECT k, x FROM readings")
	if err != nil {
		t.Fatal(err)
	}
	if full.Table == nil || len(full.Table.Rows) != n {
		t.Fatalf("drained rows: %v", full.Table)
	}
}

// TestServerMidStreamDisconnect is the cancellation drill: a client drops
// its connection partway through a large streamed result. The operator tree
// must close (no open operators), the worker slot must free up (the single
// worker serves the next client), and no goroutines may leak.
func TestServerMidStreamDisconnect(t *testing.T) {
	before := runtime.NumGoroutine()
	s := startServer(t, Config{Workers: 1, MaxConns: 8})
	addr := s.Addr().String()

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	const n = 6000
	fillTable(t, c, "big", n)

	st, err := c.QueryStream("SELECT k, x FROM big")
	if err != nil {
		t.Fatal(err)
	}
	if rows, err := st.NextBatch(); err != nil || len(rows) == 0 {
		t.Fatalf("first batch: %d rows, err %v", len(rows), err)
	}
	// Hang up with most of the stream still unsent.
	c.Close() //nolint:errcheck

	// The single worker must become available again: a fresh session's
	// queries — including another full streamed SELECT — succeed.
	c2, err := wire.DialRetry(addr, wire.RetryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	res, err := c2.Query("SELECT k, x FROM big WHERE k < 10")
	if err != nil {
		t.Fatalf("query after disconnect: %v", err)
	}
	if len(res.Table.Rows) != 10 {
		t.Fatalf("rows after disconnect: %d, want 10", len(res.Table.Rows))
	}

	// The aborted tree must have closed every operator. The abort completes
	// asynchronously with the disconnect, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for pipe.OpenOperators() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pipe.OpenOperators() = %d after disconnect", pipe.OpenOperators())
		}
		time.Sleep(10 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c2.Close() //nolint:errcheck
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			nb := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:nb])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServerStreamNonSelectUnchanged: statements without streamable output
// still arrive as one Result frame even through the streaming client path.
func TestServerStreamNonSelectUnchanged(t *testing.T) {
	s := startServer(t, Config{})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	c, err := wire.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fillTable(t, c, "t", 10)
	for _, q := range []string{
		"SELECT COUNT(*) FROM t",
		"EXPLAIN SELECT * FROM t",
		"SHOW TABLES",
	} {
		st, err := c.QueryStream(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if _, err := st.Drain(); err != nil {
			t.Fatalf("%s: drain: %v", q, err)
		}
	}
}
