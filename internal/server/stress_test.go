package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"probdb/internal/core"
	"probdb/internal/txn"
	"probdb/internal/wire"
)

// TestSnapshotIsolationStress: N writer sessions commit row PAIRS in
// transactions while reader sessions stream the table concurrently. Every
// stream must observe one consistent snapshot — for each low key its
// partner (low+partnerGap) inserted by the same transaction, never a torn
// half — even though commits land between the stream's batches. Writers
// retry on first-writer-wins conflicts, so the test also hammers the
// conflict/retry path under -race.
func TestSnapshotIsolationStress(t *testing.T) {
	const (
		writers    = 4
		perWriter  = 20
		readers    = 3
		seedPairs  = 600 // > 2 stream batches, so commits interleave batches
		partnerGap = 1_000_000
	)
	e, err := OpenEngine(EngineConfig{Dir: t.TempDir(), PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mustExecute(t, e, "CREATE TABLE pairs (k INT)")
	for lo := 0; lo < seedPairs; lo += 100 {
		sql := "INSERT INTO pairs (k) VALUES "
		for i := lo; i < lo+100; i++ {
			if i > lo {
				sql += ", "
			}
			sql += fmt.Sprintf("(%d), (%d)", i, i+partnerGap)
		}
		mustExecute(t, e, sql)
	}

	var (
		wg        sync.WaitGroup
		stop      atomic.Bool
		retries   atomic.Uint64
		streams   atomic.Uint64
		failures  = make(chan error, writers+readers)
		writersWG sync.WaitGroup
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		writersWG.Add(1)
		go func(w int) {
			defer wg.Done()
			defer writersWG.Done()
			s := e.NewSession()
			defer s.Close()
			for i := 0; i < perWriter; i++ {
				lo := 10_000 + w*1_000 + i
				for {
					var err error
					for _, sql := range []string{
						"BEGIN",
						fmt.Sprintf("INSERT INTO pairs (k) VALUES (%d)", lo),
						fmt.Sprintf("INSERT INTO pairs (k) VALUES (%d)", lo+partnerGap),
						"COMMIT",
					} {
						if _, err = s.Execute(sql); err != nil {
							break
						}
					}
					if err == nil {
						break
					}
					var ce *txn.ConflictError
					if !errors.As(err, &ce) {
						failures <- fmt.Errorf("writer %d: %w", w, err)
						return
					}
					retries.Add(1) // lost first-writer-wins; try again
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s := e.NewSession()
			defer s.Close()
			for !stop.Load() {
				seen := map[int64]bool{}
				sink := func(hdr *core.Table, batch []*core.Tuple) error {
					for _, tup := range batch {
						if v, ok := hdr.Value(tup, "k"); ok {
							seen[v.I] = true
						}
					}
					return nil
				}
				if _, _, err := s.ExecuteStream(context.Background(), "SELECT k FROM pairs", sink); err != nil {
					failures <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				for k := range seen {
					if k < partnerGap && !seen[k+partnerGap] {
						failures <- fmt.Errorf("reader %d: torn snapshot: saw %d without its partner", r, k)
						return
					}
					if k >= partnerGap && !seen[k-partnerGap] {
						failures <- fmt.Errorf("reader %d: torn snapshot: saw %d without its low half", r, k)
						return
					}
				}
				streams.Add(1)
			}
		}(r)
	}
	writersWG.Wait()
	stop.Store(true)
	wg.Wait()
	close(failures)
	for err := range failures {
		t.Fatal(err)
	}
	t.Logf("writers committed %d pair txns (%d conflict retries); readers completed %d consistent streams",
		writers*perWriter, retries.Load(), streams.Load())

	res, err := e.Execute("SELECT k FROM pairs")
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * (seedPairs + writers*perWriter)
	if got := len(res.Table.Rows); got != want {
		t.Fatalf("final row count %d, want %d", got, want)
	}
	gst := e.GroupCommitStats()
	if gst.Records == 0 {
		t.Fatal("group committer saw no records")
	}
	t.Logf("group commit: %d fsyncs for %d records (max group %d)", gst.Fsyncs, gst.Records, gst.MaxGroup)
}

// TestRollbackMidStreamNoLeak: aborting an in-transaction stream from the
// sink and rolling the transaction back must tear down the whole operator
// tree — repeated cycles leave no goroutines behind.
func TestRollbackMidStreamNoLeak(t *testing.T) {
	e, err := OpenEngine(EngineConfig{PoolPages: 8, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mustExecute(t, e, "CREATE TABLE big (k INT)")
	for lo := 0; lo < 2000; lo += 500 {
		sql := "INSERT INTO big (k) VALUES "
		for i := lo; i < lo+500; i++ {
			if i > lo {
				sql += ", "
			}
			sql += fmt.Sprintf("(%d)", i)
		}
		mustExecute(t, e, sql)
	}

	before := runtime.NumGoroutine()
	errSink := errors.New("sink gave up")
	for i := 0; i < 30; i++ {
		s := e.NewSession()
		for _, sql := range []string{"BEGIN", "INSERT INTO big (k) VALUES (99999)"} {
			if _, err := s.Execute(sql); err != nil {
				t.Fatal(err)
			}
		}
		calls := 0
		sink := func(hdr *core.Table, batch []*core.Tuple) error {
			calls++
			if calls >= 2 {
				return errSink // abandon the stream mid-flight
			}
			return nil
		}
		if _, _, err := s.ExecuteStream(context.Background(), "SELECT k FROM big", sink); !errors.Is(err, errSink) {
			t.Fatalf("cycle %d: stream error %v, want the sink's", i, err)
		}
		if _, err := s.Execute("ROLLBACK"); err != nil {
			t.Fatalf("cycle %d: rollback: %v", i, err)
		}
		s.Close()
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestWorkerPoolRejection: saturating the read class gets a typed
// overload rejection with a retry hint — and costs nothing else. The
// rejected session keeps its connection, HEALTH still answers, writes
// (a different class) are still admitted, the slot frees once the hog
// finishes, and no goroutines leak.
func TestWorkerPoolRejection(t *testing.T) {
	before := runtime.NumGoroutine()
	s := startServer(t, Config{Workers: 1, AdmitReads: 1, QueryTimeout: 30 * time.Second})
	addr := s.Addr().String()

	hog, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer hog.Close()
	if _, err := hog.Query("CREATE TABLE r (k INT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 48; i++ {
		if _, err := hog.Query(fmt.Sprintf("INSERT INTO r (k) VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	hogDone := make(chan error, 1)
	go func() {
		// One long read occupies the single read slot for a while.
		_, err := hog.Query("SELECT COUNT(*) FROM r a, r b, r c WHERE a.k < b.k AND b.k < c.k")
		hogDone <- err
	}()

	// Wait until the hog's read is actually in flight.
	waitUntil := time.Now().Add(5 * time.Second)
	for s.adm.Depths()[0] == 0 {
		if time.Now().After(waitUntil) {
			t.Fatal("hog query never acquired the read slot")
		}
		time.Sleep(time.Millisecond)
	}

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Query("SELECT k FROM r")
	var se *wire.ServerError
	if err == nil {
		t.Fatal("second read admitted past AdmitReads=1")
	}
	if !errors.As(err, &se) {
		t.Fatalf("rejection is not a typed ServerError: %v", err)
	}
	if se.Code != wire.ErrOverloaded {
		t.Fatalf("rejection code %v, want ErrOverloaded (msg %q)", se.Code, se.Msg)
	}
	if se.RetryAfter <= 0 {
		t.Fatal("rejection carries no RetryAfter hint")
	}
	if !se.Retryable() {
		t.Fatal("admission rejection must be retryable")
	}

	// The rejected session survived: HEALTH (bypassing admission) and a
	// write (a different class) both work while the read slot stays full.
	if _, err := c.Query("HEALTH"); err != nil {
		t.Fatalf("HEALTH on the rejected session: %v", err)
	}
	if _, err := c.Query("INSERT INTO r (k) VALUES (999)"); err != nil {
		t.Fatalf("write refused while only the read class is saturated: %v", err)
	}

	if err := <-hogDone; err != nil {
		t.Fatalf("hog query: %v", err)
	}
	// Slot released: the same session's read now succeeds (retry covers
	// the release racing this query).
	if _, err := c.QueryRetry("SELECT k FROM r", 10); err != nil {
		t.Fatalf("read after slot release: %v", err)
	}

	hog.Close()
	c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
