package server

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"probdb/internal/txn"
	"probdb/internal/vfs"
	"probdb/internal/vfs/faultfs"
)

// TestTxnSessionSemantics walks the BEGIN/COMMIT/ROLLBACK surface on one
// engine: overlay visibility, isolation between sessions, statement
// restrictions, abort poisoning, and durability of a committed transaction
// across a crash.
func TestTxnSessionSemantics(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenEngine(EngineConfig{Dir: dir, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	mustExecute(t, e, "CREATE TABLE r (k INT, x FLOAT UNCERTAIN)")
	mustExecute(t, e, "INSERT INTO r (k, x) VALUES (1, GAUSSIAN(10, 2))")

	s1, s2 := e.NewSession(), e.NewSession()
	defer s1.Close()
	defer s2.Close()

	rows := func(s *Session) int {
		t.Helper()
		res, err := s.Execute("SELECT k FROM r")
		if err != nil {
			t.Fatal(err)
		}
		if res.Table == nil {
			return 0
		}
		return len(res.Table.Rows)
	}

	res, err := s1.Execute("BEGIN")
	if err != nil || !res.InTxn {
		t.Fatalf("BEGIN: %+v, %v", res, err)
	}
	if _, err := s1.Execute("BEGIN"); err == nil {
		t.Fatal("nested BEGIN succeeded")
	}
	res, err = s1.Execute("INSERT INTO r (k, x) VALUES (2, GAUSSIAN(20, 2))")
	if err != nil || !res.InTxn || res.Affected != 1 {
		t.Fatalf("in-txn INSERT: %+v, %v", res, err)
	}
	// Read-your-writes inside the transaction; isolation outside it.
	if got := rows(s1); got != 2 {
		t.Fatalf("s1 sees %d rows inside its txn, want 2", got)
	}
	if got := rows(s2); got != 1 {
		t.Fatalf("s2 sees %d rows during s1's txn, want 1", got)
	}

	// Statements a transaction cannot hold.
	if _, err := s1.Execute("CHECKPOINT"); err == nil {
		t.Fatal("CHECKPOINT inside a transaction succeeded")
	}
	if _, err := s1.Execute("CREATE TABLE t2 (k INT)"); err == nil || !strings.Contains(err.Error(), "allowed inside a transaction") {
		t.Fatalf("DDL inside a transaction: %v", err)
	}

	res, err = s1.Execute("COMMIT")
	if err != nil {
		t.Fatal(err)
	}
	if res.InTxn {
		t.Fatalf("COMMIT result still flagged in-txn: %+v", res)
	}
	// One statement plus the commit marker, one fsync led by this session.
	if res.Stats.WALGroupSize < 2 || res.Stats.WALFsyncs != 1 {
		t.Fatalf("commit stats: %+v, want group >= 2 with a led fsync", res.Stats)
	}
	if got := rows(s2); got != 2 {
		t.Fatalf("s2 sees %d rows after s1's commit, want 2", got)
	}

	// ROLLBACK discards the overlay.
	mustSession := func(s *Session, sql string) {
		t.Helper()
		if _, err := s.Execute(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustSession(s1, "BEGIN")
	mustSession(s1, "INSERT INTO r (k, x) VALUES (3, GAUSSIAN(30, 2))")
	if got := rows(s1); got != 3 {
		t.Fatalf("overlay rows %d, want 3", got)
	}
	mustSession(s1, "ROLLBACK")
	if got := rows(s1); got != 2 {
		t.Fatalf("rows after rollback %d, want 2", got)
	}
	if _, err := s1.Execute("ROLLBACK"); err == nil {
		t.Fatal("ROLLBACK without a transaction succeeded")
	}
	if _, err := s1.Execute("COMMIT"); err == nil {
		t.Fatal("COMMIT without a transaction succeeded")
	}

	// A read-only transaction commits without touching the WAL.
	mustSession(s1, "BEGIN")
	if got := rows(s1); got != 2 {
		t.Fatalf("read-only txn rows %d", got)
	}
	res, err = s1.Execute("COMMIT")
	if err != nil || res.Stats.WALGroupSize != 0 {
		t.Fatalf("read-only commit: %+v, %v", res, err)
	}

	// A failed statement poisons the transaction: only ROLLBACK (or a
	// COMMIT that reports the abort) gets out.
	mustSession(s1, "BEGIN")
	if _, err := s1.Execute("INSERT INTO r (nope) VALUES (1)"); err == nil {
		t.Fatal("bad insert succeeded")
	}
	if _, err := s1.Execute("SELECT k FROM r"); err == nil || !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("statement in aborted txn: %v", err)
	}
	if _, err := s1.Execute("COMMIT"); err == nil || !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("COMMIT of aborted txn: %v", err)
	}
	// The failed COMMIT rolled back; the session is usable again.
	if got := rows(s1); got != 2 {
		t.Fatalf("rows after aborted txn %d, want 2", got)
	}

	// Committed transactions survive a crash: the group-committed batch
	// replays whole.
	mustSession(s1, "BEGIN")
	mustSession(s1, "INSERT INTO r (k, x) VALUES (4, GAUSSIAN(40, 2))")
	mustSession(s1, "INSERT INTO r (k, x) VALUES (5, GAUSSIAN(50, 2))")
	mustSession(s1, "COMMIT")
	// And an uncommitted one does not.
	mustSession(s2, "BEGIN")
	mustSession(s2, "INSERT INTO r (k, x) VALUES (99, GAUSSIAN(9, 1))")
	e.Abort()

	re, err := OpenEngine(EngineConfig{Dir: dir, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	res, err = re.Execute("SELECT k FROM r")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Table.Rows); got != 4 {
		t.Fatalf("recovered %d rows, want 4 (k=1,2,4,5)", got)
	}
}

// TestTxnConflict: first-writer-wins. Two transactions write the same
// table; the second committer gets a typed ConflictError, its transaction
// is gone, and the engine's conflict counter moves.
func TestTxnConflict(t *testing.T) {
	e, err := OpenEngine(EngineConfig{PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mustExecute(t, e, "CREATE TABLE r (k INT, x FLOAT UNCERTAIN)")

	s1, s2 := e.NewSession(), e.NewSession()
	defer s1.Close()
	defer s2.Close()
	for _, step := range []struct {
		s   *Session
		sql string
	}{
		{s1, "BEGIN"}, {s2, "BEGIN"},
		{s1, "INSERT INTO r (k, x) VALUES (10, GAUSSIAN(1, 1))"},
		{s2, "INSERT INTO r (k, x) VALUES (11, GAUSSIAN(1, 1))"},
		{s1, "COMMIT"},
	} {
		if _, err := step.s.Execute(step.sql); err != nil {
			t.Fatalf("%s: %v", step.sql, err)
		}
	}
	_, err = s2.Execute("COMMIT")
	var ce *txn.ConflictError
	if !errors.As(err, &ce) || ce.Table != "r" {
		t.Fatalf("losing COMMIT: %v, want ConflictError on r", err)
	}
	if got := e.Conflicts(); got != 1 {
		t.Fatalf("engine conflict counter %d, want 1", got)
	}
	// The losing transaction is rolled back, not stuck.
	if _, err := s2.Execute("COMMIT"); err == nil || !strings.Contains(err.Error(), "no transaction") {
		t.Fatalf("COMMIT after conflict: %v", err)
	}

	// An autocommit write conflicts with an open transaction the same way.
	if _, err := s2.Execute("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Execute("INSERT INTO r (k, x) VALUES (12, GAUSSIAN(1, 1))"); err != nil {
		t.Fatal(err)
	}
	mustExecute(t, e, "INSERT INTO r (k, x) VALUES (13, GAUSSIAN(1, 1))")
	if _, err := s2.Execute("COMMIT"); !errors.As(err, &ce) {
		t.Fatalf("commit over autocommit write: %v, want ConflictError", err)
	}

	// Disjoint write sets do not conflict.
	mustExecute(t, e, "CREATE TABLE other (k INT)")
	for _, step := range []struct {
		s   *Session
		sql string
	}{
		{s1, "BEGIN"}, {s2, "BEGIN"},
		{s1, "INSERT INTO r (k, x) VALUES (20, GAUSSIAN(1, 1))"},
		{s2, "INSERT INTO other (k) VALUES (21)"},
		{s1, "COMMIT"}, {s2, "COMMIT"},
	} {
		if _, err := step.s.Execute(step.sql); err != nil {
			t.Fatalf("%s: %v", step.sql, err)
		}
	}
}

// txnUnit is one atomic workload unit for the transactional crash sweep: a
// statement sequence that either commits whole or must vanish whole.
type txnUnit struct {
	stmts []string
	apply func(m map[string][]int)
}

var txnCrashWorkload = []txnUnit{
	{[]string{"CREATE TABLE r (k INT, x FLOAT UNCERTAIN)"}, func(m map[string][]int) { m["r"] = nil }},
	{[]string{
		"BEGIN",
		"INSERT INTO r (k, x) VALUES (1, GAUSSIAN(10, 2))",
		"INSERT INTO r (k, x) VALUES (2, GAUSSIAN(20, 2))",
		"COMMIT",
	}, func(m map[string][]int) { m["r"] = append(m["r"], 1, 2) }},
	// A rolled-back transaction writes nothing anywhere — not even records.
	{[]string{
		"BEGIN",
		"INSERT INTO r (k, x) VALUES (99, GAUSSIAN(9, 1))",
		"ROLLBACK",
	}, nil},
	{[]string{"CHECKPOINT"}, nil},
	{[]string{
		"BEGIN",
		"INSERT INTO r (k, x) VALUES (3, GAUSSIAN(30, 2))",
		"DELETE FROM r WHERE k = 1",
		"COMMIT",
	}, func(m map[string][]int) {
		var keep []int
		for _, k := range m["r"] {
			if k != 1 {
				keep = append(keep, k)
			}
		}
		m["r"] = append(keep, 3)
	}},
	{[]string{"INSERT INTO r (k, x) VALUES (4, GAUSSIAN(40, 2))"}, func(m map[string][]int) { m["r"] = append(m["r"], 4) }},
}

// runTxnWorkload drives the unit workload through one session, returning
// the model after the last fully-successful unit plus (if a unit failed)
// the model including the first failed unit — the transaction whose commit
// batch a crash may have made durable or not, but never partially.
func runTxnWorkload(e *Engine) (committed, inflight string) {
	s := e.NewSession()
	defer s.Close()
	m := map[string][]int{}
	inflightModel := ""
	failed := false
	for _, u := range txnCrashWorkload {
		uerr := error(nil)
		for _, sql := range u.stmts {
			if _, err := s.Execute(sql); err != nil && uerr == nil {
				uerr = err
			}
		}
		if u.apply == nil {
			continue
		}
		if uerr == nil {
			u.apply(m)
			continue
		}
		if !failed {
			failed = true
			c := map[string][]int{}
			for k, v := range m {
				c[k] = append([]int(nil), v...)
			}
			u.apply(c)
			inflightModel = renderModel(c)
		}
	}
	return renderModel(m), inflightModel
}

// TestTxnCrashMatrix sweeps a crash over every mutating filesystem
// operation of a transactional workload, in every fault mode. The recovered
// state must always be the committed units — possibly plus the in-flight
// unit in full. Transactions are atomic across crashes: no cell may ever
// recover half a commit batch (e.g. the INSERT of k=3 without the DELETE of
// k=1 it committed with).
func TestTxnCrashMatrix(t *testing.T) {
	countDir := t.TempDir()
	in := faultfs.NewInjector()
	e, err := OpenEngine(EngineConfig{Dir: countDir, PoolPages: 8, CheckpointBytes: -1, FS: faultfs.New(vfs.OS, in)})
	if err != nil {
		t.Fatal(err)
	}
	in.Arm(0, faultfs.ModeFail) // never fires; counts ops
	wantState, _ := runTxnWorkload(e)
	nOps := in.Ops()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if nOps < 10 {
		t.Fatalf("workload issued only %d mutating ops", nOps)
	}
	t.Logf("transactional workload: %d mutating filesystem operations, final state %q", nOps, wantState)

	modes := []struct {
		name string
		mode faultfs.Mode
	}{
		{"fail", faultfs.ModeFail},
		{"short", faultfs.ModeShortWrite},
		{"torn", faultfs.ModeTornWrite},
	}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			for k := 1; k <= nOps; k++ {
				dir := filepath.Join(t.TempDir(), fmt.Sprintf("crash%d", k))
				in := faultfs.NewInjector()
				e, err := OpenEngine(EngineConfig{
					Dir: dir, PoolPages: 8, CheckpointBytes: -1,
					FS: faultfs.New(vfs.OS, in),
				})
				if err != nil {
					t.Fatalf("op %d: open: %v", k, err)
				}
				in.Arm(k, mode.mode)
				committed, inflight := runTxnWorkload(e)
				e.Abort()

				re, err := OpenEngine(EngineConfig{Dir: dir, PoolPages: 8, CheckpointBytes: -1})
				if err != nil {
					t.Fatalf("op %d (%s): recovery failed: %v", k, mode.name, err)
				}
				got := engineState(t, re)
				if got != committed && (inflight == "" || got != inflight) {
					t.Fatalf("op %d (%s): recovered state %q, want %q (committed) or %q (with in-flight txn)",
						k, mode.name, got, committed, inflight)
				}
				if !in.Injected() && got != wantState {
					t.Fatalf("op %d (%s): fault never fired yet state %q differs from full run %q",
						k, mode.name, got, wantState)
				}
				if err := re.Close(); err != nil {
					t.Fatalf("op %d (%s): close after recovery: %v", k, mode.name, err)
				}
			}
		})
	}
}
