package server

import (
	"errors"
	"fmt"
	"path/filepath"

	"probdb/internal/wal"
	"probdb/internal/wire"
)

// This file is the leader's half of WAL shipping. The replication LSN is a
// byte offset into the concatenation of every generation's record stream
// (generation 0 first), so it survives checkpoints: rolling the log starts
// a new file but the LSN keeps counting. A replica that stores the shipped
// bytes verbatim therefore holds a byte-identical copy of the leader's
// committed history and can resume from its own local length after either
// side restarts.

// shipGen is one retained, immutable WAL generation in the shipping chain.
type shipGen struct {
	path string
	size int64 // record-stream bytes (whole, checksummed records)
}

// maxFetchBytes caps one WALSegment's record payload well under the frame
// layer's MaxPayload, leaving room for the segment header varints.
const maxFetchBytes = 8 << 20

// errShipDisabled is returned by FetchWAL on engines not configured to
// retain their WAL history.
var errShipDisabled = errors.New("server: WAL shipping not enabled (start the leader with ship-wal)")

// buildShipChainLocked indexes the retained rolled generations at startup.
// Every generation before the current one must still exist with an intact
// stream: a hole would mean a replica could be told "caught up" while
// missing committed history, so a directory that predates ship-wal (its
// old logs already garbage-collected) is refused outright.
func (e *Engine) buildShipChainLocked() error {
	e.chain, e.chainBase = nil, 0
	for g := uint64(0); g < e.gen; g++ {
		p := filepath.Join(e.cfg.Dir, walFile(g))
		n, err := wal.StreamSize(e.cfg.FS, p)
		if err != nil {
			return fmt.Errorf("server: ship-wal: WAL generation %d of %d unavailable (%v); "+
				"shipping needs the full generation chain, so enable ship-wal before the "+
				"data directory's first write", g, e.gen, err)
		}
		e.chain = append(e.chain, shipGen{path: p, size: n})
		e.chainBase += n
	}
	return nil
}

// FetchWAL serves one replica pull: up to maxBytes of whole WAL records
// starting at record-stream offset fromLSN, never past the durability
// frontier (bytes enqueued but not yet fsync-acknowledged are not history
// yet). The chain and frontier are snapshotted under the engine mutex and
// the file reads run without it — rolled generations are immutable and the
// current log only ever appends past the snapshotted frontier.
func (e *Engine) FetchWAL(fromLSN, maxBytes uint64) (*wire.WALSegment, error) {
	e.mu.Lock()
	if !e.cfg.ShipWAL || e.cfg.Dir == "" || e.gc == nil {
		e.mu.Unlock()
		return nil, errShipDisabled
	}
	if e.broken != nil {
		err := fmt.Errorf("server: WAL shipping halted: %w", e.broken)
		e.mu.Unlock()
		return nil, err
	}
	curPath := filepath.Join(e.cfg.Dir, walFile(e.gen))
	curStream := e.gc.DurableSize() - int64(wal.HeaderLen)
	total := e.chainBase + curStream
	from := int64(fromLSN)
	if from < 0 || from > total {
		e.mu.Unlock()
		return nil, fmt.Errorf("server: WAL fetch at LSN %d is past the durable frontier %d (diverged replica?)", fromLSN, total)
	}
	// Locate the generation holding `from`. A fetch landing exactly on a
	// generation boundary belongs to the next one.
	path, lo, limit := curPath, from-e.chainBase, curStream
	base := int64(0)
	for _, g := range e.chain {
		if from < base+g.size {
			path, lo, limit = g.path, from-base, g.size
			break
		}
		base += g.size
	}
	e.mu.Unlock()

	if maxBytes == 0 || maxBytes > maxFetchBytes {
		maxBytes = maxFetchBytes
	}
	recs, err := wal.ReadSegment(e.cfg.FS, path, lo, limit, int(maxBytes))
	if err != nil {
		return nil, err
	}
	return &wire.WALSegment{BaseLSN: fromLSN, DurableLSN: uint64(total), Records: recs}, nil
}

// DurableLSN reports the leader's current shipping frontier (for tests and
// the replica-catchup wait in failover).
func (e *Engine) DurableLSN() (uint64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.cfg.ShipWAL || e.cfg.Dir == "" || e.gc == nil {
		return 0, errShipDisabled
	}
	return uint64(e.chainBase + e.gc.DurableSize() - int64(wal.HeaderLen)), nil
}
