package storage

import (
	"fmt"
)

// RID addresses one record in a heap file: page and slot.
type RID struct {
	Page PageID
	Slot uint16
}

// String renders the rid as "page:slot".
func (r RID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

// Heap is an append-oriented heap file of variable-length records on top of
// a buffer pool — the access method the Fig. 5 scans run against.
type Heap struct {
	pool *Pool
	// tail is the page currently receiving appends (the last page), or
	// invalid when the file is empty.
	tailValid bool
	tail      PageID
	count     uint64
}

// NewHeap creates a heap over the pool's pager. If the underlying file
// already has pages, appends continue on the last page.
func NewHeap(pool *Pool) *Heap {
	h := &Heap{pool: pool}
	if n := pool.pager.NumPages(); n > 0 {
		h.tailValid = true
		h.tail = n - 1
	}
	return h
}

// Pool returns the underlying buffer pool (for stats).
func (h *Heap) Pool() *Pool { return h.pool }

// NumPages returns the number of pages in the heap.
func (h *Heap) NumPages() PageID { return h.pool.pager.NumPages() }

// Count returns the number of records appended through this handle.
func (h *Heap) Count() uint64 { return h.count }

// Append stores a record and returns its RID.
func (h *Heap) Append(rec []byte) (RID, error) {
	if h.tailValid {
		pg, err := h.pool.Pin(h.tail)
		if err != nil {
			return RID{}, err
		}
		slot, err := pg.Append(rec)
		if err == nil {
			h.count++
			return RID{Page: h.tail, Slot: uint16(slot)}, h.pool.Unpin(h.tail, true)
		}
		if uerr := h.pool.Unpin(h.tail, false); uerr != nil {
			return RID{}, uerr
		}
		if err != ErrPageFull {
			return RID{}, err
		}
	}
	id, pg, err := h.pool.PinNew()
	if err != nil {
		return RID{}, err
	}
	slot, err := pg.Append(rec)
	if err != nil {
		h.pool.Unpin(id, false)
		return RID{}, err
	}
	h.tailValid = true
	h.tail = id
	h.count++
	return RID{Page: id, Slot: uint16(slot)}, h.pool.Unpin(id, true)
}

// Get returns a copy of the record at rid.
func (h *Heap) Get(rid RID) ([]byte, error) {
	pg, err := h.pool.Pin(rid.Page)
	if err != nil {
		return nil, err
	}
	rec, err := pg.Record(int(rid.Slot))
	if err != nil {
		h.pool.Unpin(rid.Page, false)
		return nil, err
	}
	out := make([]byte, len(rec))
	copy(out, rec)
	return out, h.pool.Unpin(rid.Page, false)
}

// Scan calls fn for every record in file order. The record slice passed to
// fn aliases pool memory and must not be retained. Returning a non-nil
// error from fn aborts the scan with that error.
func (h *Heap) Scan(fn func(rid RID, rec []byte) error) error {
	n := h.NumPages()
	for id := PageID(0); id < n; id++ {
		pg, err := h.pool.Pin(id)
		if err != nil {
			return err
		}
		for s := 0; s < pg.NumRecords(); s++ {
			rec, err := pg.Record(s)
			if err == nil {
				err = fn(RID{Page: id, Slot: uint16(s)}, rec)
			}
			if err != nil {
				h.pool.Unpin(id, false)
				return err
			}
		}
		if err := h.pool.Unpin(id, false); err != nil {
			return err
		}
	}
	return nil
}
