// Package storage is the page-based storage engine under the benchmarks: a
// disk pager, an LRU buffer pool with read/write accounting, and slotted
// heap files. The paper ran inside PostgreSQL; the cost separation its
// Fig. 5 reports comes from tuple size → pages touched → buffer misses, and
// this package reproduces exactly that mechanism. All I/O flows through the
// pool and is counted, so benchmarks can report both wall time and the page
// reads that drive it.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// PageSize is the fixed page size, matching PostgreSQL's default.
const PageSize = 8192

// PageID identifies a page within a file.
type PageID uint32

// Page is one fixed-size page. The slotted layout is:
//
//	[0:2)   slot count n
//	[2:4)   free-space offset (start of the record area tail)
//	[4:4+4n) slot array: record offset uint16, record length uint16
//	[...:free) free space
//	[free:PageSize) record data, growing downward
type Page struct {
	Data [PageSize]byte
}

const (
	pageHdrSize  = 4
	slotSize     = 4
	maxRecordLen = PageSize - pageHdrSize - slotSize
)

// ErrPageFull reports that a record does not fit in the page's free space.
var ErrPageFull = errors.New("storage: page full")

// Reset initializes an empty slotted page.
func (p *Page) Reset() {
	for i := range p.Data {
		p.Data[i] = 0
	}
	p.setSlotCount(0)
	p.setFreeOff(PageSize)
}

func (p *Page) slotCount() int     { return int(binary.LittleEndian.Uint16(p.Data[0:2])) }
func (p *Page) setSlotCount(n int) { binary.LittleEndian.PutUint16(p.Data[0:2], uint16(n)) }
func (p *Page) freeOff() int       { return int(binary.LittleEndian.Uint16(p.Data[2:4])) }
func (p *Page) setFreeOff(off int) { binary.LittleEndian.PutUint16(p.Data[2:4], uint16(off)) }

func (p *Page) slot(i int) (off, length int) {
	base := pageHdrSize + i*slotSize
	return int(binary.LittleEndian.Uint16(p.Data[base : base+2])),
		int(binary.LittleEndian.Uint16(p.Data[base+2 : base+4]))
}

func (p *Page) setSlot(i, off, length int) {
	base := pageHdrSize + i*slotSize
	binary.LittleEndian.PutUint16(p.Data[base:base+2], uint16(off))
	binary.LittleEndian.PutUint16(p.Data[base+2:base+4], uint16(length))
}

// FreeSpace returns the bytes available for one more record (including its
// slot).
func (p *Page) FreeSpace() int {
	free := p.freeOff() - (pageHdrSize + p.slotCount()*slotSize) - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// NumRecords returns the number of records stored in the page.
func (p *Page) NumRecords() int { return p.slotCount() }

// Append stores a record in the page and returns its slot number.
func (p *Page) Append(rec []byte) (int, error) {
	if len(rec) > maxRecordLen {
		return 0, fmt.Errorf("storage: record of %d bytes exceeds page capacity %d", len(rec), maxRecordLen)
	}
	if len(rec) > p.FreeSpace() {
		return 0, ErrPageFull
	}
	n := p.slotCount()
	off := p.freeOff() - len(rec)
	copy(p.Data[off:off+len(rec)], rec)
	p.setSlot(n, off, len(rec))
	p.setFreeOff(off)
	p.setSlotCount(n + 1)
	return n, nil
}

// Record returns the record in the given slot. The returned slice aliases
// the page buffer and is only valid while the page stays pinned.
func (p *Page) Record(slot int) ([]byte, error) {
	if slot < 0 || slot >= p.slotCount() {
		return nil, fmt.Errorf("storage: slot %d out of range [0,%d)", slot, p.slotCount())
	}
	off, length := p.slot(slot)
	if off < 0 || off+length > PageSize {
		return nil, fmt.Errorf("storage: corrupt slot %d (off=%d len=%d)", slot, off, length)
	}
	return p.Data[off : off+length], nil
}
