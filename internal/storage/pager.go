package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"

	"probdb/internal/vfs"
)

// Pager reads and writes fixed-size pages by ID. Implementations: FilePager
// (disk-backed) and MemPager (RAM-backed, for tests and for isolating CPU
// cost from I/O in ablation benchmarks).
type Pager interface {
	// ReadPage fills buf with the page's contents.
	ReadPage(id PageID, buf *Page) error
	// WritePage persists buf as the page's contents, extending the backing
	// store if id is one past the end.
	WritePage(id PageID, buf *Page) error
	// NumPages returns the number of allocated pages.
	NumPages() PageID
	// Close releases the backing store.
	Close() error
}

// ErrCorruptPage reports that a page's on-disk bytes fail their checksum —
// a torn write, bit rot, or outside interference. Errors from ReadPage wrap
// it (errors.Is) with the file and page identified, so the engine can
// quarantine the damaged table instead of dying.
var ErrCorruptPage = errors.New("storage: corrupt page")

// diskPageSize is a page's on-disk footprint: the 8 KiB image followed by a
// CRC32C (Castagnoli) trailer. The checksum lives outside the page image so
// every page consumer — slotted heaps, raw B+-tree nodes — keeps the full
// PageSize bytes and stays oblivious to it; torn-write detection is a
// property of the storage medium, not of the page layout.
const diskPageSize = PageSize + 4

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// FilePager stores checksummed pages in an operating-system file.
type FilePager struct {
	f      vfs.File
	path   string
	npages PageID

	// scratch assembles image+trailer for one write; the mutex covers it
	// and npages for pagers shared by several scratch pools.
	mu      sync.Mutex
	scratch [diskPageSize]byte
}

// OpenFile opens (or creates) a page file at path on the real filesystem.
func OpenFile(path string) (*FilePager, error) {
	return OpenFileFS(vfs.OS, path)
}

// OpenFileFS opens (or creates) a page file at path on fsys.
func OpenFileFS(fsys vfs.FS, path string) (*FilePager, error) {
	return openFS(fsys, path, os.O_RDWR|os.O_CREATE)
}

// CreateFileFS creates an empty page file at path on fsys, truncating any
// existing contents — the checkpoint writer's entry point.
func CreateFileFS(fsys vfs.FS, path string) (*FilePager, error) {
	return openFS(fsys, path, os.O_RDWR|os.O_CREATE|os.O_TRUNC)
}

func openFS(fsys vfs.FS, path string, flag int) (*FilePager, error) {
	f, err := fsys.OpenFile(path, flag, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size()%diskPageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s size %d is not page aligned (checksummed pages are %d bytes)",
			path, st.Size(), diskPageSize)
	}
	return &FilePager{f: f, path: path, npages: PageID(st.Size() / diskPageSize)}, nil
}

// ReadPage implements Pager, verifying the page's checksum. A mismatch
// returns an error wrapping ErrCorruptPage.
func (fp *FilePager) ReadPage(id PageID, buf *Page) error {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	if id >= fp.npages {
		return fmt.Errorf("storage: read of unallocated page %d (have %d)", id, fp.npages)
	}
	if _, err := fp.f.ReadAt(fp.scratch[:], int64(id)*diskPageSize); err != nil {
		return err
	}
	stored := binary.LittleEndian.Uint32(fp.scratch[PageSize:])
	if sum := crc32.Checksum(fp.scratch[:PageSize], castagnoli); sum != stored {
		return fmt.Errorf("%w: %s page %d (stored crc %08x, computed %08x)",
			ErrCorruptPage, fp.path, id, stored, sum)
	}
	copy(buf.Data[:], fp.scratch[:PageSize])
	return nil
}

// WritePage implements Pager, stamping the page's checksum.
func (fp *FilePager) WritePage(id PageID, buf *Page) error {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	if id > fp.npages {
		return fmt.Errorf("storage: write would leave a hole at page %d (have %d)", id, fp.npages)
	}
	copy(fp.scratch[:PageSize], buf.Data[:])
	binary.LittleEndian.PutUint32(fp.scratch[PageSize:], crc32.Checksum(buf.Data[:], castagnoli))
	if _, err := fp.f.WriteAt(fp.scratch[:], int64(id)*diskPageSize); err != nil {
		return err
	}
	if id == fp.npages {
		fp.npages++
	}
	return nil
}

// NumPages implements Pager.
func (fp *FilePager) NumPages() PageID {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	return fp.npages
}

// Sync flushes the file to stable storage.
func (fp *FilePager) Sync() error { return fp.f.Sync() }

// Path returns the backing file's path.
func (fp *FilePager) Path() string { return fp.path }

// Close implements Pager.
func (fp *FilePager) Close() error { return fp.f.Close() }

// MemPager stores pages in memory.
type MemPager struct {
	pages []*Page
}

// NewMemPager returns an empty in-memory pager.
func NewMemPager() *MemPager { return &MemPager{} }

// ReadPage implements Pager.
func (mp *MemPager) ReadPage(id PageID, buf *Page) error {
	if int(id) >= len(mp.pages) {
		return fmt.Errorf("storage: read of unallocated page %d (have %d)", id, len(mp.pages))
	}
	*buf = *mp.pages[id]
	return nil
}

// WritePage implements Pager.
func (mp *MemPager) WritePage(id PageID, buf *Page) error {
	if int(id) > len(mp.pages) {
		return fmt.Errorf("storage: write would leave a hole at page %d (have %d)", id, len(mp.pages))
	}
	cp := *buf
	if int(id) == len(mp.pages) {
		mp.pages = append(mp.pages, &cp)
	} else {
		mp.pages[id] = &cp
	}
	return nil
}

// NumPages implements Pager.
func (mp *MemPager) NumPages() PageID { return PageID(len(mp.pages)) }

// Close implements Pager.
func (mp *MemPager) Close() error { return nil }
