package storage

import (
	"fmt"
	"os"
)

// Pager reads and writes fixed-size pages by ID. Implementations: FilePager
// (disk-backed) and MemPager (RAM-backed, for tests and for isolating CPU
// cost from I/O in ablation benchmarks).
type Pager interface {
	// ReadPage fills buf with the page's contents.
	ReadPage(id PageID, buf *Page) error
	// WritePage persists buf as the page's contents, extending the backing
	// store if id is one past the end.
	WritePage(id PageID, buf *Page) error
	// NumPages returns the number of allocated pages.
	NumPages() PageID
	// Close releases the backing store.
	Close() error
}

// FilePager stores pages in an operating-system file.
type FilePager struct {
	f      *os.File
	npages PageID
}

// OpenFile opens (or creates) a page file at path.
func OpenFile(path string) (*FilePager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s size %d is not page aligned", path, st.Size())
	}
	return &FilePager{f: f, npages: PageID(st.Size() / PageSize)}, nil
}

// ReadPage implements Pager.
func (fp *FilePager) ReadPage(id PageID, buf *Page) error {
	if id >= fp.npages {
		return fmt.Errorf("storage: read of unallocated page %d (have %d)", id, fp.npages)
	}
	_, err := fp.f.ReadAt(buf.Data[:], int64(id)*PageSize)
	return err
}

// WritePage implements Pager.
func (fp *FilePager) WritePage(id PageID, buf *Page) error {
	if id > fp.npages {
		return fmt.Errorf("storage: write would leave a hole at page %d (have %d)", id, fp.npages)
	}
	if _, err := fp.f.WriteAt(buf.Data[:], int64(id)*PageSize); err != nil {
		return err
	}
	if id == fp.npages {
		fp.npages++
	}
	return nil
}

// NumPages implements Pager.
func (fp *FilePager) NumPages() PageID { return fp.npages }

// Sync flushes the file to stable storage.
func (fp *FilePager) Sync() error { return fp.f.Sync() }

// Close implements Pager.
func (fp *FilePager) Close() error { return fp.f.Close() }

// MemPager stores pages in memory.
type MemPager struct {
	pages []*Page
}

// NewMemPager returns an empty in-memory pager.
func NewMemPager() *MemPager { return &MemPager{} }

// ReadPage implements Pager.
func (mp *MemPager) ReadPage(id PageID, buf *Page) error {
	if int(id) >= len(mp.pages) {
		return fmt.Errorf("storage: read of unallocated page %d (have %d)", id, len(mp.pages))
	}
	*buf = *mp.pages[id]
	return nil
}

// WritePage implements Pager.
func (mp *MemPager) WritePage(id PageID, buf *Page) error {
	if int(id) > len(mp.pages) {
		return fmt.Errorf("storage: write would leave a hole at page %d (have %d)", id, len(mp.pages))
	}
	cp := *buf
	if int(id) == len(mp.pages) {
		mp.pages = append(mp.pages, &cp)
	} else {
		mp.pages[id] = &cp
	}
	return nil
}

// NumPages implements Pager.
func (mp *MemPager) NumPages() PageID { return PageID(len(mp.pages)) }

// Close implements Pager.
func (mp *MemPager) Close() error { return nil }
