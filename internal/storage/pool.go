package storage

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// Stats counts the buffer pool's traffic. PageReads is the number of pages
// fetched from the pager (pool misses) — the quantity that separates the
// representations in Fig. 5; Hits is the number of requests served from
// memory; PageWrites counts dirty evictions and flushes.
type Stats struct {
	PageReads  uint64
	PageWrites uint64
	Hits       uint64
}

// Add returns the sum of two stat snapshots (for aggregating across pools).
func (s Stats) Add(o Stats) Stats {
	return Stats{
		PageReads:  s.PageReads + o.PageReads,
		PageWrites: s.PageWrites + o.PageWrites,
		Hits:       s.Hits + o.Hits,
	}
}

// Sub returns the difference s−o, the traffic between two snapshots.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		PageReads:  s.PageReads - o.PageReads,
		PageWrites: s.PageWrites - o.PageWrites,
		Hits:       s.Hits - o.Hits,
	}
}

type frame struct {
	id    PageID
	page  Page
	dirty bool
	pins  int
	lru   *list.Element
}

// Pool is an LRU buffer pool in front of a Pager. It is safe for concurrent
// use: frame and LRU bookkeeping run under a mutex (the single-session fast
// path takes one uncontended lock and allocates nothing), and the traffic
// counters are atomics so Stats can be sampled without blocking scans.
//
// Pinned pages may be shared between sessions; the *Page contents alias pool
// memory, so concurrent writers to the same page must coordinate above the
// pool (the heap layer's appenders do).
type Pool struct {
	mu       sync.Mutex
	pager    Pager
	capacity int
	frames   map[PageID]*frame
	lru      *list.List // of PageID, front = most recent

	reads  atomic.Uint64
	writes atomic.Uint64
	hits   atomic.Uint64
}

// NewPool creates a buffer pool of the given capacity (pages) over a pager.
func NewPool(pager Pager, capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	return &Pool{
		pager:    pager,
		capacity: capacity,
		frames:   make(map[PageID]*frame, capacity),
		lru:      list.New(),
	}
}

// Stats returns a snapshot of the accumulated counters. It does not block
// in-flight pins; each counter is individually consistent.
func (p *Pool) Stats() Stats {
	return Stats{
		PageReads:  p.reads.Load(),
		PageWrites: p.writes.Load(),
		Hits:       p.hits.Load(),
	}
}

// ResetStats zeroes the counters (between benchmark phases). The reset is
// atomic with respect to the counters: it takes the pool mutex, so no pin
// can increment between the counter read and the zeroing — a reset during
// an active scan cannot lose that scan's in-flight page read.
func (p *Pool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.reads.Store(0)
	p.writes.Store(0)
	p.hits.Store(0)
}

// Capacity returns the pool capacity in pages.
func (p *Pool) Capacity() int { return p.capacity }

// Pin fetches the page into the pool and pins it. Every Pin must be paired
// with an Unpin. The returned *Page aliases pool memory.
func (p *Pool) Pin(id PageID) (*Page, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fr, ok := p.frames[id]; ok {
		p.hits.Add(1)
		fr.pins++
		p.lru.MoveToFront(fr.lru)
		return &fr.page, nil
	}
	fr, err := p.allocFrame(id)
	if err != nil {
		return nil, err
	}
	if err := p.pager.ReadPage(id, &fr.page); err != nil {
		p.dropFrame(fr)
		return nil, err
	}
	p.reads.Add(1)
	fr.pins = 1
	return &fr.page, nil
}

// PinNew allocates a brand-new page at the end of the file, zeroed and
// pinned. The caller must initialize and Unpin it (dirty).
func (p *Pool) PinNew() (PageID, *Page, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.pager.NumPages()
	// Materialize the page in the file so subsequent reads succeed.
	var empty Page
	empty.Reset()
	if err := p.pager.WritePage(id, &empty); err != nil {
		return 0, nil, err
	}
	p.writes.Add(1)
	fr, err := p.allocFrame(id)
	if err != nil {
		return 0, nil, err
	}
	fr.page.Reset()
	fr.pins = 1
	return id, &fr.page, nil
}

// Unpin releases a pin, marking the page dirty if it was modified.
func (p *Pool) Unpin(id PageID, dirty bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	fr, ok := p.frames[id]
	if !ok || fr.pins == 0 {
		return fmt.Errorf("storage: unpin of unpinned page %d", id)
	}
	fr.pins--
	if dirty {
		fr.dirty = true
	}
	return nil
}

// Flush writes all dirty pages back to the pager.
func (p *Pool) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushLocked()
}

func (p *Pool) flushLocked() error {
	for _, fr := range p.frames {
		if fr.dirty {
			if err := p.pager.WritePage(fr.id, &fr.page); err != nil {
				return err
			}
			p.writes.Add(1)
			fr.dirty = false
		}
	}
	return nil
}

// Invalidate drops all unpinned frames (dirty ones are flushed first) so
// the next accesses hit the pager again — used to cold-start benchmark
// phases.
func (p *Pool) Invalidate() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.flushLocked(); err != nil {
		return err
	}
	for id, fr := range p.frames {
		if fr.pins == 0 {
			p.lru.Remove(fr.lru)
			delete(p.frames, id)
		}
	}
	return nil
}

func (p *Pool) allocFrame(id PageID) (*frame, error) {
	if len(p.frames) >= p.capacity {
		if err := p.evict(); err != nil {
			return nil, err
		}
	}
	fr := &frame{id: id}
	fr.lru = p.lru.PushFront(id)
	p.frames[id] = fr
	return fr, nil
}

func (p *Pool) dropFrame(fr *frame) {
	p.lru.Remove(fr.lru)
	delete(p.frames, fr.id)
}

func (p *Pool) evict() error {
	for e := p.lru.Back(); e != nil; e = e.Prev() {
		id := e.Value.(PageID)
		fr := p.frames[id]
		if fr.pins > 0 {
			continue
		}
		if fr.dirty {
			if err := p.pager.WritePage(fr.id, &fr.page); err != nil {
				return err
			}
			p.writes.Add(1)
		}
		p.dropFrame(fr)
		return nil
	}
	return fmt.Errorf("storage: buffer pool exhausted (%d pages, all pinned)", p.capacity)
}
