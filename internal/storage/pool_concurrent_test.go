package storage

import (
	"sync"
	"testing"
)

// fillPages writes n pages through a pool so the pager has something to
// serve; the pool is flushed and invalidated so later pins miss cold.
func fillPages(t *testing.T, pager Pager, n int) {
	t.Helper()
	warm := NewPool(pager, n+1)
	for i := 0; i < n; i++ {
		id, pg, err := warm.PinNew()
		if err != nil {
			t.Fatal(err)
		}
		pg.Reset()
		if _, err := pg.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := warm.Unpin(id, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := warm.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolConcurrentPins hammers one pool from many goroutines — the
// server's shared-catalog access pattern. Run with -race.
func TestPoolConcurrentPins(t *testing.T) {
	const pages = 16
	pager := NewMemPager()
	fillPages(t, pager, pages)

	// Capacity 12 < 16 pages forces evictions and cold re-reads, while
	// leaving headroom above the worst case of 8 simultaneous pins.
	pool := NewPool(pager, 12)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := PageID((seed*31 + i) % pages)
				pg, err := pool.Pin(id)
				if err != nil {
					t.Error(err)
					return
				}
				if pg.NumRecords() != 1 {
					t.Errorf("page %d: %d records", id, pg.NumRecords())
				}
				if err := pool.Unpin(id, false); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := pool.Stats()
	if st.PageReads == 0 || st.Hits == 0 {
		t.Fatalf("expected both misses and hits, got %+v", st)
	}
	if st.PageReads+st.Hits != 8*500 {
		t.Fatalf("reads+hits = %d, want %d", st.PageReads+st.Hits, 8*500)
	}
}

// TestPoolResetStatsDuringScan checks the satellite bugfix: a ResetStats
// racing an active scan must not lose the scan's in-flight counter updates
// (every pin is attributed either before or after the reset, never dropped).
func TestPoolResetStatsDuringScan(t *testing.T) {
	const pages = 32
	pager := NewMemPager()
	fillPages(t, pager, pages)

	// Capacity 1 forces every pin of a new page to be a miss: with no
	// resets, a full sweep is exactly `pages` reads.
	pool := NewPool(pager, 1)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // resetter: fires continuously while the scan runs
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				pool.ResetStats()
			}
		}
	}()

	const sweeps = 50
	for s := 0; s < sweeps; s++ {
		before := pool.Stats()
		for id := PageID(0); id < pages; id++ {
			pg, err := pool.Pin(id)
			if err != nil {
				t.Fatal(err)
			}
			_ = pg
			if err := pool.Unpin(id, false); err != nil {
				t.Fatal(err)
			}
		}
		after := pool.Stats()
		// A reset between the snapshots makes the delta negative; that is
		// expected. What must never happen is a delta above the true
		// traffic (an over- or under-count from a torn reset).
		delta := int64(after.PageReads) - int64(before.PageReads)
		if delta > pages {
			t.Fatalf("sweep %d: read delta %d exceeds true traffic %d", s, delta, pages)
		}
		if after.PageReads > sweeps*pages {
			t.Fatalf("sweep %d: absolute reads %d exceed all traffic ever issued", s, after.PageReads)
		}
	}
	close(stop)
	wg.Wait()

	// Quiesced: a final reset followed by one sweep must count exactly.
	pool.ResetStats()
	for id := PageID(0); id < pages; id++ {
		if _, err := pool.Pin(id); err != nil {
			t.Fatal(err)
		}
		if err := pool.Unpin(id, false); err != nil {
			t.Fatal(err)
		}
	}
	if got := pool.Stats().PageReads; got != pages {
		t.Fatalf("post-reset sweep counted %d reads, want %d", got, pages)
	}
}
