package storage

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestPageAppendAndRecord(t *testing.T) {
	var p Page
	p.Reset()
	recs := [][]byte{[]byte("hello"), []byte(""), bytes.Repeat([]byte("x"), 1000)}
	for i, r := range recs {
		slot, err := p.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		if slot != i {
			t.Errorf("slot = %d, want %d", slot, i)
		}
	}
	for i, r := range recs {
		got, err := p.Record(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, r) {
			t.Errorf("record %d = %q, want %q", i, got, r)
		}
	}
	if _, err := p.Record(3); err == nil {
		t.Error("out-of-range slot should fail")
	}
	if _, err := p.Record(-1); err == nil {
		t.Error("negative slot should fail")
	}
}

func TestPageFull(t *testing.T) {
	var p Page
	p.Reset()
	rec := bytes.Repeat([]byte("a"), 1000)
	n := 0
	for {
		if _, err := p.Append(rec); err != nil {
			if err != ErrPageFull {
				t.Fatalf("unexpected error %v", err)
			}
			break
		}
		n++
	}
	if n != (PageSize-pageHdrSize)/(1000+slotSize) {
		t.Errorf("fitted %d records", n)
	}
	if _, err := p.Append(bytes.Repeat([]byte("b"), PageSize)); err == ErrPageFull {
		t.Error("oversized record should be a hard error, not ErrPageFull")
	}
}

func TestPagePropertyRoundTrip(t *testing.T) {
	f := func(recs [][]byte) bool {
		var p Page
		p.Reset()
		var stored [][]byte
		for _, r := range recs {
			if len(r) > 2000 {
				r = r[:2000]
			}
			if _, err := p.Append(r); err != nil {
				break
			}
			stored = append(stored, r)
		}
		for i, want := range stored {
			got, err := p.Record(i)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return p.NumRecords() == len(stored)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func testPagers(t *testing.T) map[string]Pager {
	dir := t.TempDir()
	fp, err := OpenFile(filepath.Join(dir, "t.pages"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fp.Close() })
	return map[string]Pager{"file": fp, "mem": NewMemPager()}
}

func TestPagerReadWrite(t *testing.T) {
	for name, pg := range testPagers(t) {
		t.Run(name, func(t *testing.T) {
			var p Page
			p.Reset()
			p.Append([]byte("first"))
			if err := pg.WritePage(0, &p); err != nil {
				t.Fatal(err)
			}
			if err := pg.WritePage(2, &p); err == nil {
				t.Error("write with a hole should fail")
			}
			var q Page
			if err := pg.ReadPage(0, &q); err != nil {
				t.Fatal(err)
			}
			rec, err := q.Record(0)
			if err != nil || string(rec) != "first" {
				t.Errorf("read back %q, %v", rec, err)
			}
			if err := pg.ReadPage(9, &q); err == nil {
				t.Error("read of unallocated page should fail")
			}
			if pg.NumPages() != 1 {
				t.Errorf("pages = %d", pg.NumPages())
			}
		})
	}
}

func TestFilePagerPersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.pages")
	fp, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var p Page
	p.Reset()
	p.Append([]byte("durable"))
	if err := fp.WritePage(0, &p); err != nil {
		t.Fatal(err)
	}
	if err := fp.Sync(); err != nil {
		t.Fatal(err)
	}
	fp.Close()

	fp2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fp2.Close()
	if fp2.NumPages() != 1 {
		t.Fatalf("reopened pages = %d", fp2.NumPages())
	}
	var q Page
	if err := fp2.ReadPage(0, &q); err != nil {
		t.Fatal(err)
	}
	rec, _ := q.Record(0)
	if string(rec) != "durable" {
		t.Errorf("read back %q", rec)
	}
}

func TestPoolHitAndMissAccounting(t *testing.T) {
	pool := NewPool(NewMemPager(), 2)
	id0, pg, err := pool.PinNew()
	if err != nil {
		t.Fatal(err)
	}
	pg.Append([]byte("a"))
	pool.Unpin(id0, true)
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	// First pin after flush is a hit (still resident).
	if _, err := pool.Pin(id0); err != nil {
		t.Fatal(err)
	}
	pool.Unpin(id0, false)
	st := pool.Stats()
	if st.Hits != 1 {
		t.Errorf("hits = %d, want 1", st.Hits)
	}
	// Invalidate, then pin misses.
	if err := pool.Invalidate(); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Pin(id0); err != nil {
		t.Fatal(err)
	}
	pool.Unpin(id0, false)
	if got := pool.Stats().PageReads; got != 1 {
		t.Errorf("reads = %d, want 1", got)
	}
}

func TestPoolEvictsLRU(t *testing.T) {
	pool := NewPool(NewMemPager(), 2)
	var ids []PageID
	for i := 0; i < 3; i++ {
		id, pg, err := pool.PinNew()
		if err != nil {
			t.Fatal(err)
		}
		pg.Append([]byte{byte(i)})
		pool.Unpin(id, true)
		ids = append(ids, id)
	}
	// Page 0 was evicted (capacity 2); pinning it must be a read.
	pool.ResetStats()
	pg, err := pool.Pin(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := pg.Record(0)
	if rec[0] != 0 {
		t.Errorf("evicted page content lost: %v", rec)
	}
	pool.Unpin(ids[0], false)
	if pool.Stats().PageReads != 1 {
		t.Errorf("reads = %d, want 1 (page must have been evicted)", pool.Stats().PageReads)
	}
}

func TestPoolAllPinnedFails(t *testing.T) {
	pool := NewPool(NewMemPager(), 1)
	id, _, err := pool.PinNew()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pool.PinNew(); err == nil {
		t.Error("pool with all pages pinned should fail")
	}
	pool.Unpin(id, false)
	if err := pool.Unpin(id, false); err == nil {
		t.Error("double unpin should fail")
	}
}

func TestHeapAppendScanGet(t *testing.T) {
	pool := NewPool(NewMemPager(), 8)
	h := NewHeap(pool)
	var rids []RID
	var want [][]byte
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		rec := make([]byte, 10+r.Intn(50))
		r.Read(rec)
		rid, err := h.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
		want = append(want, rec)
	}
	if h.Count() != 5000 {
		t.Errorf("count = %d", h.Count())
	}
	if h.NumPages() < 2 {
		t.Errorf("expected multiple pages, got %d", h.NumPages())
	}
	// Point lookups.
	for _, i := range []int{0, 1, 4999, 2500} {
		got, err := h.Get(rids[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Errorf("Get(%v) mismatch", rids[i])
		}
	}
	// Full scan preserves order and contents.
	i := 0
	err := h.Scan(func(rid RID, rec []byte) error {
		if !bytes.Equal(rec, want[i]) {
			return fmt.Errorf("record %d mismatch", i)
		}
		if rid != rids[i] {
			return fmt.Errorf("rid %d mismatch: %v vs %v", i, rid, rids[i])
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != 5000 {
		t.Errorf("scanned %d records", i)
	}
}

func TestHeapScanAbortsOnError(t *testing.T) {
	pool := NewPool(NewMemPager(), 4)
	h := NewHeap(pool)
	for i := 0; i < 10; i++ {
		if _, err := h.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	err := h.Scan(func(RID, []byte) error {
		n++
		if n == 3 {
			return fmt.Errorf("stop")
		}
		return nil
	})
	if err == nil || n != 3 {
		t.Errorf("scan should abort at 3, got n=%d err=%v", n, err)
	}
}

func TestHeapOnDiskWithSmallPool(t *testing.T) {
	// A scan over a file much larger than the pool re-reads every page.
	path := filepath.Join(t.TempDir(), "h.pages")
	fp, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fp.Close()
	pool := NewPool(fp, 4)
	h := NewHeap(pool)
	rec := bytes.Repeat([]byte("r"), 400)
	for i := 0; i < 2000; i++ {
		if _, err := h.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.Invalidate(); err != nil {
		t.Fatal(err)
	}
	pool.ResetStats()
	n := 0
	if err := h.Scan(func(RID, []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2000 {
		t.Errorf("scanned %d", n)
	}
	if got, want := pool.Stats().PageReads, uint64(h.NumPages()); got != want {
		t.Errorf("cold scan reads = %d, want %d (every page)", got, want)
	}
}

func TestHeapReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.pages")
	fp, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(fp, 4)
	h := NewHeap(pool)
	for i := 0; i < 100; i++ {
		if _, err := h.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	fp.Close()

	fp2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fp2.Close()
	h2 := NewHeap(NewPool(fp2, 4))
	n := 0
	if err := h2.Scan(func(_ RID, rec []byte) error {
		if rec[0] != byte(n) {
			return fmt.Errorf("record %d corrupted", n)
		}
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Errorf("reopened scan saw %d records", n)
	}
	// Appends continue on the existing tail page.
	if _, err := h2.Append([]byte{200}); err != nil {
		t.Fatal(err)
	}
	if h2.NumPages() != 1 {
		t.Errorf("append after reopen should reuse the tail page, pages = %d", h2.NumPages())
	}
}

// TestFilePagerChecksum: flipping any byte of a page's on-disk image (or of
// its checksum trailer) must surface as ErrCorruptPage on read — the signal
// the engine's quarantine path is built on.
func TestFilePagerChecksum(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.pages")
	fp, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var p Page
	p.Reset()
	p.Append([]byte("checksummed"))
	if err := fp.WritePage(0, &p); err != nil {
		t.Fatal(err)
	}
	if err := fp.WritePage(1, &p); err != nil {
		t.Fatal(err)
	}
	fp.Sync()
	fp.Close()

	for _, off := range []int64{0, 100, PageSize - 1, PageSize, PageSize + 3} {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[off] ^= 0xff
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		fp2, err := OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var q Page
		if err := fp2.ReadPage(0, &q); !errors.Is(err, ErrCorruptPage) {
			t.Errorf("offset %d: read of corrupt page 0: %v, want ErrCorruptPage", off, err)
		}
		// The sibling page is untouched and still reads fine.
		if err := fp2.ReadPage(1, &q); err != nil {
			t.Errorf("offset %d: intact page 1 unreadable: %v", off, err)
		}
		fp2.Close()
		raw[off] ^= 0xff // restore for the next offset
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFilePagerRejectsMisalignedFile: a file whose size is not a whole
// number of checksummed pages (e.g. a pre-checksum layout, or a truncated
// copy) must be refused at open.
func TestFilePagerRejectsMisalignedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.pages")
	if err := os.WriteFile(path, make([]byte, PageSize), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); err == nil {
		t.Fatal("opened a misaligned page file")
	}
}
