// Package store persists base probabilistic tables into the page-based
// storage engine and loads them back: the bridge between the model layer
// (internal/core) and the heap files (internal/storage). The on-disk layout
// is a schema record followed by one record per tuple, with pdfs in the
// dist wire format — so a table of symbolic Gaussians costs 17 bytes per
// pdf on disk, exactly the representation economics the paper's Fig. 5
// builds on.
//
// Persistence covers *base* tables: the paper's model derives everything
// else with operators, and derived tables (with phantom attributes and
// cross-table histories) are recomputed, not stored. SaveTable rejects
// tables with phantom attributes.
package store

import (
	"encoding/binary"
	"fmt"
	"math"

	"probdb/internal/core"
	"probdb/internal/dist"
	"probdb/internal/storage"
)

// formatVersion guards the record layout.
const formatVersion = 1

// SaveTable writes the table into the heap. The heap must be empty.
func SaveTable(t *core.Table, heap *storage.Heap) error {
	if heap.NumPages() != 0 {
		return fmt.Errorf("store: target heap is not empty")
	}
	if ph := t.PhantomAttrs(); len(ph) > 0 {
		return fmt.Errorf("store: cannot persist derived table with phantom attributes %v", ph)
	}
	hdr, err := encodeSchema(t)
	if err != nil {
		return err
	}
	if _, err := heap.Append(hdr); err != nil {
		return err
	}
	if err := appendTuples(heap, t, t.Tuples()); err != nil {
		return err
	}
	return heap.Pool().Flush()
}

// AppendRows appends tuple records for the given tuples (which must belong
// to t) to a heap previously initialized by SaveTable for the same table,
// then flushes — the write-through path a server's INSERT uses, so a row's
// durability costs one tail-page pin instead of a full rewrite.
func AppendRows(heap *storage.Heap, t *core.Table, tuples []*core.Tuple) error {
	if heap.NumPages() == 0 {
		return fmt.Errorf("store: append to uninitialized heap (no schema record)")
	}
	if err := appendTuples(heap, t, tuples); err != nil {
		return err
	}
	return heap.Pool().Flush()
}

func appendTuples(heap *storage.Heap, t *core.Table, tuples []*core.Tuple) error {
	deps := t.DepSets()
	cols := t.Schema().Columns()
	for _, tup := range tuples {
		rec := []byte{formatVersion}
		for _, c := range cols {
			if c.Uncertain {
				continue
			}
			v, _ := t.Value(tup, c.Name)
			rec = appendValue(rec, v)
		}
		for i := range deps {
			rec = dist.AppendEncode(rec, t.DepDist(tup, i))
		}
		if _, err := heap.Append(rec); err != nil {
			return fmt.Errorf("store: tuple record: %w", err)
		}
	}
	return nil
}

// LoadTable reads a table previously written by SaveTable. The loaded
// pdfs are re-registered as fresh base pdfs in reg (pass nil for a new
// registry): on-disk tables are base tables, so histories restart from
// them (Definition 2).
func LoadTable(heap *storage.Heap, reg *core.Registry) (*core.Table, error) {
	var t *core.Table
	var deps [][]string
	var certainCols []core.Column
	first := true
	err := heap.Scan(func(_ storage.RID, rec []byte) error {
		if first {
			first = false
			var err error
			t, deps, certainCols, err = decodeSchema(rec, reg)
			return err
		}
		if len(rec) < 1 || rec[0] != formatVersion {
			return fmt.Errorf("store: bad tuple record version")
		}
		rec = rec[1:]
		row := core.Row{Values: map[string]core.Value{}}
		for _, c := range certainCols {
			v, n, err := decodeValue(rec)
			if err != nil {
				return fmt.Errorf("store: column %s: %w", c.Name, err)
			}
			rec = rec[n:]
			row.Values[c.Name] = v
		}
		for _, set := range deps {
			d, n, err := dist.Decode(rec)
			if err != nil {
				return fmt.Errorf("store: pdf of %v: %w", set, err)
			}
			rec = rec[n:]
			row.PDFs = append(row.PDFs, core.PDF{Attrs: set, Dist: d})
		}
		if len(rec) != 0 {
			return fmt.Errorf("store: %d trailing bytes in tuple record", len(rec))
		}
		return t.Insert(row)
	})
	if err != nil {
		return nil, err
	}
	if t == nil {
		return nil, fmt.Errorf("store: empty heap (no schema record)")
	}
	return t, nil
}

func encodeSchema(t *core.Table) ([]byte, error) {
	buf := []byte{formatVersion}
	buf = appendString(buf, t.Name)
	cols := t.Schema().Columns()
	buf = binary.AppendUvarint(buf, uint64(len(cols)))
	for _, c := range cols {
		buf = appendString(buf, c.Name)
		buf = append(buf, byte(c.Type))
		if c.Uncertain {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	deps := t.DepSets()
	buf = binary.AppendUvarint(buf, uint64(len(deps)))
	for _, set := range deps {
		buf = binary.AppendUvarint(buf, uint64(len(set)))
		for _, a := range set {
			buf = appendString(buf, a)
		}
	}
	return buf, nil
}

func decodeSchema(rec []byte, reg *core.Registry) (*core.Table, [][]string, []core.Column, error) {
	if len(rec) < 1 || rec[0] != formatVersion {
		return nil, nil, nil, fmt.Errorf("store: bad schema record version")
	}
	rec = rec[1:]
	name, n, err := decodeString(rec)
	if err != nil {
		return nil, nil, nil, err
	}
	rec = rec[n:]
	ncols, n := binary.Uvarint(rec)
	if n <= 0 || ncols > 1<<16 {
		return nil, nil, nil, fmt.Errorf("store: bad column count")
	}
	rec = rec[n:]
	cols := make([]core.Column, ncols)
	var certain []core.Column
	for i := range cols {
		cname, n, err := decodeString(rec)
		if err != nil {
			return nil, nil, nil, err
		}
		rec = rec[n:]
		if len(rec) < 2 {
			return nil, nil, nil, fmt.Errorf("store: truncated column descriptor")
		}
		cols[i] = core.Column{Name: cname, Type: core.AttrType(rec[0]), Uncertain: rec[1] == 1}
		rec = rec[2:]
		if !cols[i].Uncertain {
			certain = append(certain, cols[i])
		}
	}
	ndeps, n := binary.Uvarint(rec)
	if n <= 0 || ndeps > 1<<16 {
		return nil, nil, nil, fmt.Errorf("store: bad dependency count")
	}
	rec = rec[n:]
	deps := make([][]string, ndeps)
	for i := range deps {
		na, n := binary.Uvarint(rec)
		if n <= 0 || na > 1<<16 {
			return nil, nil, nil, fmt.Errorf("store: bad dependency set size")
		}
		rec = rec[n:]
		set := make([]string, na)
		for j := range set {
			a, n, err := decodeString(rec)
			if err != nil {
				return nil, nil, nil, err
			}
			rec = rec[n:]
			set[j] = a
		}
		deps[i] = set
	}
	schema, err := core.NewSchema(cols)
	if err != nil {
		return nil, nil, nil, err
	}
	t, err := core.NewTable(name, schema, deps, reg)
	if err != nil {
		return nil, nil, nil, err
	}
	// NewTable may append singleton sets; use its canonical ordering.
	return t, t.DepSets(), certain, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func decodeString(rec []byte) (string, int, error) {
	l, n := binary.Uvarint(rec)
	if n <= 0 || int(l) > len(rec)-n {
		return "", 0, fmt.Errorf("store: bad string")
	}
	return string(rec[n : n+int(l)]), n + int(l), nil
}

// Value wire tags.
const (
	valNull byte = iota
	valInt
	valFloat
	valString
	valBool
)

func appendValue(buf []byte, v core.Value) []byte {
	switch v.Kind {
	case core.NullValue:
		return append(buf, valNull)
	case core.IntValue:
		buf = append(buf, valInt)
		return binary.AppendVarint(buf, v.I)
	case core.FloatValue:
		buf = append(buf, valFloat)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
	case core.StringValue:
		buf = append(buf, valString)
		return appendString(buf, v.S)
	case core.BoolValue:
		buf = append(buf, valBool)
		if v.B {
			return append(buf, 1)
		}
		return append(buf, 0)
	}
	panic(fmt.Sprintf("store: unknown value kind %d", v.Kind))
}

func decodeValue(rec []byte) (core.Value, int, error) {
	if len(rec) == 0 {
		return core.Null, 0, fmt.Errorf("store: truncated value")
	}
	switch rec[0] {
	case valNull:
		return core.Null, 1, nil
	case valInt:
		i, n := binary.Varint(rec[1:])
		if n <= 0 {
			return core.Null, 0, fmt.Errorf("store: bad int")
		}
		return core.Int(i), 1 + n, nil
	case valFloat:
		if len(rec) < 9 {
			return core.Null, 0, fmt.Errorf("store: bad float")
		}
		return core.Float(math.Float64frombits(binary.LittleEndian.Uint64(rec[1:]))), 9, nil
	case valString:
		s, n, err := decodeString(rec[1:])
		if err != nil {
			return core.Null, 0, err
		}
		return core.Str(s), 1 + n, nil
	case valBool:
		if len(rec) < 2 {
			return core.Null, 0, fmt.Errorf("store: bad bool")
		}
		return core.Bool(rec[1] == 1), 2, nil
	}
	return core.Null, 0, fmt.Errorf("store: unknown value tag %d", rec[0])
}
