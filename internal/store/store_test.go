package store

import (
	"math"
	"path/filepath"
	"testing"

	"probdb/internal/core"
	"probdb/internal/dist"
	"probdb/internal/region"
	"probdb/internal/storage"
)

func buildSample(t *testing.T) *core.Table {
	t.Helper()
	schema := core.MustSchema(
		core.Column{Name: "id", Type: core.IntType},
		core.Column{Name: "tag", Type: core.StringType},
		core.Column{Name: "ok", Type: core.BoolType},
		core.Column{Name: "w", Type: core.FloatType},
		core.Column{Name: "x", Type: core.FloatType, Uncertain: true},
		core.Column{Name: "a", Type: core.IntType, Uncertain: true},
		core.Column{Name: "b", Type: core.IntType, Uncertain: true},
	)
	tbl := core.MustTable("Sample", schema, [][]string{{"a", "b"}}, nil)
	rows := []core.Row{
		{
			Values: map[string]core.Value{
				"id": core.Int(1), "tag": core.Str("first"), "ok": core.Bool(true), "w": core.Float(1.5),
			},
			PDFs: []core.PDF{
				{Attrs: []string{"a", "b"}, Dist: dist.NewDiscreteJoint(2, []dist.Point{
					{X: []float64{4, 5}, P: 0.9}, {X: []float64{2, 3}, P: 0.1},
				})},
				{Attrs: []string{"x"}, Dist: dist.NewGaussianVar(20, 5)},
			},
		},
		{
			Values: map[string]core.Value{"id": core.Int(2)}, // others NULL
			PDFs: []core.PDF{
				{Attrs: []string{"a", "b"}, Dist: dist.NewDiscreteJoint(2, []dist.Point{
					{X: []float64{7, 3}, P: 0.7},
				})},
				{Attrs: []string{"x"}, Dist: dist.ToHistogram(dist.NewGaussian(5, 1), 5)},
			},
		},
	}
	for _, r := range rows {
		if err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func memHeap() *storage.Heap {
	return storage.NewHeap(storage.NewPool(storage.NewMemPager(), 16))
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tbl := buildSample(t)
	heap := memHeap()
	if err := SaveTable(tbl, heap); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTable(heap, nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "Sample" {
		t.Errorf("name = %q", back.Name)
	}
	if back.Schema().String() != tbl.Schema().String() {
		t.Errorf("schema %v != %v", back.Schema(), tbl.Schema())
	}
	if back.Len() != tbl.Len() {
		t.Fatalf("tuples %d != %d", back.Len(), tbl.Len())
	}
	for i, tup := range back.Tuples() {
		src := tbl.Tuples()[i]
		for _, c := range tbl.Schema().Columns() {
			if c.Uncertain {
				d1, _ := back.DistOf(tup, c.Name)
				d2, _ := tbl.DistOf(src, c.Name)
				if d1.String() != d2.String() {
					t.Errorf("tuple %d col %s: %v != %v", i, c.Name, d1, d2)
				}
				continue
			}
			v1, _ := back.Value(tup, c.Name)
			v2, _ := tbl.Value(src, c.Name)
			if v1.Render() != v2.Render() {
				t.Errorf("tuple %d col %s: %v != %v", i, c.Name, v1.Render(), v2.Render())
			}
		}
		if math.Abs(back.ExistenceProb(tup)-tbl.ExistenceProb(src)) > 1e-12 {
			t.Errorf("tuple %d existence differs", i)
		}
	}
	// Loaded tables are usable base tables: operators work and histories
	// restart from fresh base pdfs.
	sel, err := back.Select(core.Cmp(core.Col("a"), region.LT, core.Col("b")))
	if err != nil {
		t.Fatal(err)
	}
	if sel.Len() != 1 {
		t.Errorf("select on loaded table: %d rows", sel.Len())
	}
}

func TestSaveLoadOnDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sample.pages")
	fp, err := storage.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	heap := storage.NewHeap(storage.NewPool(fp, 8))
	tbl := buildSample(t)
	if err := SaveTable(tbl, heap); err != nil {
		t.Fatal(err)
	}
	if err := fp.Sync(); err != nil {
		t.Fatal(err)
	}
	fp.Close()

	fp2, err := storage.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fp2.Close()
	back, err := LoadTable(storage.NewHeap(storage.NewPool(fp2, 8)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Errorf("tuples = %d", back.Len())
	}
}

func TestSaveRejectsPhantoms(t *testing.T) {
	tbl := buildSample(t)
	sel, err := tbl.Select(core.Cmp(core.Col("a"), region.LT, core.Col("b")))
	if err != nil {
		t.Fatal(err)
	}
	proj, err := sel.Project("id", "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveTable(proj, memHeap()); err == nil {
		t.Error("saving a table with phantom attributes should fail")
	}
}

func TestSaveRejectsNonEmptyHeap(t *testing.T) {
	heap := memHeap()
	if _, err := heap.Append([]byte("junk")); err != nil {
		t.Fatal(err)
	}
	if err := SaveTable(buildSample(t), heap); err == nil {
		t.Error("non-empty heap should be rejected")
	}
}

func TestLoadErrors(t *testing.T) {
	// Empty heap.
	if _, err := LoadTable(memHeap(), nil); err == nil {
		t.Error("empty heap should fail")
	}
	// Corrupted schema record.
	heap := memHeap()
	heap.Append([]byte{99})
	if _, err := LoadTable(heap, nil); err == nil {
		t.Error("bad version should fail")
	}
	// Truncated tuple record.
	heap2 := memHeap()
	tbl := buildSample(t)
	if err := SaveTable(tbl, heap2); err != nil {
		t.Fatal(err)
	}
	heap2.Append([]byte{1, 2}) // bogus extra tuple
	if _, err := LoadTable(heap2, nil); err == nil {
		t.Error("corrupt tuple record should fail")
	}
}

func TestLoadSharesRegistry(t *testing.T) {
	heap := memHeap()
	if err := SaveTable(buildSample(t), heap); err != nil {
		t.Fatal(err)
	}
	reg := core.NewRegistry()
	a, err := LoadTable(heap, reg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Registry() != reg {
		t.Error("registry not shared")
	}
	if reg.Len() == 0 {
		t.Error("loaded pdfs should be registered as bases")
	}
}
