// Package txn holds the transaction subsystem's engine-independent parts:
// the WAL group committer that turns per-statement fsyncs into batched
// ones, and the typed errors transactions surface (write-write conflicts).
//
// The group committer is leader/follower, with no daemon goroutine: callers
// enqueue their records (in apply order, under the engine mutex) and then
// Wait. The first waiter to find the queue unflushed elects itself leader,
// takes the whole queue as one group, writes it with a single WriteAt and a
// single fsync (wal.Log.AppendBatch), and wakes everyone in the group.
// Sessions that enqueue while a flush is in flight pile up behind it and
// are carried by the next leader — under concurrent commit traffic the
// common case is many transactions per fsync.
package txn

import (
	"fmt"
	"sync"
	"sync/atomic"

	"probdb/internal/wal"
)

// ConflictError is the typed first-writer-wins abort: between this
// transaction's BEGIN and its COMMIT, another transaction (or an autocommit
// statement) committed a write to a table this transaction also wrote.
type ConflictError struct {
	Table string
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("txn: write-write conflict on table %q (another writer committed first); retry the transaction", e.Table)
}

// Retryable reports true: the transaction aborted cleanly without applying
// any of its writes, so re-running it from BEGIN is always safe.
func (e *ConflictError) Retryable() bool { return true }

// Ack reports how an enqueued batch became durable.
type Ack struct {
	// GroupSize is the number of WAL records in the fsync group that
	// carried this batch — >1 means group commit amortized the fsync.
	GroupSize int
	// Led reports whether this waiter performed the group's fsync.
	Led bool
}

// Stats are cumulative group-commit counters.
type Stats struct {
	Fsyncs   uint64 // fsync calls issued (one per group)
	Records  uint64 // WAL records made durable
	MaxGroup uint64 // largest group flushed by one fsync
}

// waiter is one enqueued batch and its completion state, guarded by the
// committer's mutex.
type waiter struct {
	recs  []wal.Record
	bytes int64
	done  bool
	err   error
	group int
	led   bool
}

// GroupCommitter batches WAL appends from concurrent sessions into shared
// fsyncs. Enqueue must be called under the lock that defines apply order
// (the engine mutex), so queue order == log order == apply order; Wait is
// called after that lock is released.
type GroupCommitter struct {
	mu       sync.Mutex
	cond     *sync.Cond
	log      *wal.Log
	queue    []*waiter
	flushing bool
	err      error // latch: a flush failed; ordering unknown, refuse all

	size    atomic.Int64 // durable valid bytes of the current log
	pending atomic.Int64 // enqueued bytes not yet flushed

	fsyncs   atomic.Uint64
	records  atomic.Uint64
	maxGroup atomic.Uint64
}

// NewGroupCommitter wraps an open log.
func NewGroupCommitter(l *wal.Log) *GroupCommitter {
	g := &GroupCommitter{log: l}
	g.cond = sync.NewCond(&g.mu)
	g.size.Store(l.Size())
	return g
}

// Ticket is one session's handle on an enqueued batch.
type Ticket struct {
	g *GroupCommitter
	w *waiter
}

// Enqueue appends recs to the shared commit queue as one atomic batch and
// returns a Ticket to Wait on. Call under the engine mutex; the records of
// one Enqueue are always contiguous in the log.
func (g *GroupCommitter) Enqueue(recs []wal.Record) *Ticket {
	w := &waiter{recs: recs}
	for _, r := range recs {
		w.bytes += wal.EncodedSize(len(r.Data))
	}
	g.mu.Lock()
	if g.err != nil {
		w.done = true
		w.err = g.err
	} else {
		g.queue = append(g.queue, w)
		g.pending.Add(w.bytes)
	}
	g.mu.Unlock()
	return &Ticket{g: g, w: w}
}

// Wait blocks until the ticket's batch is durable (or the log has failed).
// The calling session may be elected leader and perform the group's fsync
// itself; followers sleep until the leader wakes them.
func (t *Ticket) Wait() (Ack, error) {
	g := t.g
	g.mu.Lock()
	for !t.w.done {
		if !g.flushing && len(g.queue) > 0 {
			g.flushGroupLocked(t.w)
			continue
		}
		g.cond.Wait()
	}
	ack := Ack{GroupSize: t.w.group, Led: t.w.led}
	err := t.w.err
	g.mu.Unlock()
	return ack, err
}

// flushGroupLocked is the leader's half: called with g.mu held, !g.flushing
// and a non-empty queue. It takes the whole queue as one group, drops the
// lock for the write+fsync, then re-locks and completes the group. leader
// (may be nil for Flush) is marked as having led its own group.
func (g *GroupCommitter) flushGroupLocked(leader *waiter) {
	if g.err != nil {
		for _, w := range g.queue {
			w.done, w.err = true, g.err
			g.pending.Add(-w.bytes)
		}
		g.queue = nil
		g.cond.Broadcast()
		return
	}
	batch := g.queue
	g.queue = nil
	g.flushing = true
	log := g.log
	var recs []wal.Record
	for _, w := range batch {
		recs = append(recs, w.recs...)
	}
	g.mu.Unlock()
	err := log.AppendBatch(recs)
	size := log.Size()
	g.mu.Lock()
	g.flushing = false
	if err == nil {
		g.fsyncs.Add(1)
		g.records.Add(uint64(len(recs)))
		if uint64(len(recs)) > g.maxGroup.Load() {
			g.maxGroup.Store(uint64(len(recs)))
		}
		g.size.Store(size)
	} else {
		// The group's tail state is unknown and later enqueues were
		// ordered after records that may not exist: latch everything.
		g.err = err
	}
	for _, w := range batch {
		w.done = true
		w.err = err
		w.group = len(recs)
		w.led = w == leader
		g.pending.Add(-w.bytes)
	}
	g.cond.Broadcast()
}

// Flush drives the queue (including batches whose owners are still in
// Wait) until it is empty and no flush is in flight, then reports the
// latch state. The engine calls it under its mutex before rolling the log
// at a checkpoint, so no Enqueue can race it.
func (g *GroupCommitter) Flush() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		if !g.flushing && len(g.queue) > 0 {
			g.flushGroupLocked(nil)
			continue
		}
		if g.flushing {
			g.cond.Wait()
			continue
		}
		return g.err
	}
}

// SetLog swaps in a freshly rolled log. Call only after a successful Flush
// with no concurrent Enqueue (the engine mutex guarantees both).
func (g *GroupCommitter) SetLog(l *wal.Log) {
	g.mu.Lock()
	g.log = l
	g.size.Store(l.Size())
	g.mu.Unlock()
}

// Size returns durable-plus-enqueued log bytes — the engine's
// auto-checkpoint trigger and per-query WAL-bytes stat read this without
// racing an in-flight flush.
func (g *GroupCommitter) Size() int64 { return g.size.Load() + g.pending.Load() }

// DurableSize returns only the fsync-acknowledged bytes of the current
// log. WAL shipping reads this as the frontier it may serve to replicas:
// enqueued-but-unflushed bytes are not yet a durability promise, and a
// record must never reach a replica before it can survive a leader crash.
func (g *GroupCommitter) DurableSize() int64 { return g.size.Load() }

// Stats returns a snapshot of the cumulative counters.
func (g *GroupCommitter) Stats() Stats {
	return Stats{
		Fsyncs:   g.fsyncs.Load(),
		Records:  g.records.Load(),
		MaxGroup: g.maxGroup.Load(),
	}
}
