package txn

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"probdb/internal/vfs"
	"probdb/internal/vfs/faultfs"
	"probdb/internal/wal"
)

func newLog(t *testing.T) *wal.Log {
	t.Helper()
	l, err := wal.Create(vfs.OS, filepath.Join(t.TempDir(), "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// TestGroupCommitSerial: a lone committer always leads its own group of one.
func TestGroupCommitSerial(t *testing.T) {
	g := NewGroupCommitter(newLog(t))
	for i := 0; i < 5; i++ {
		tk := g.Enqueue([]wal.Record{{Type: wal.TypeStatement, Data: []byte("stmt")}})
		ack, err := tk.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if !ack.Led || ack.GroupSize != 1 {
			t.Fatalf("serial commit %d: ack %+v, want led group of 1", i, ack)
		}
	}
	st := g.Stats()
	if st.Fsyncs != 5 || st.Records != 5 {
		t.Fatalf("stats %+v, want 5 fsyncs / 5 records", st)
	}
}

// TestGroupCommitBatches: concurrent committers amortize fsyncs — with the
// log on a filesystem that serializes syncs, N waiters must finish with
// strictly fewer than N fsyncs (followers ride the leader's sync).
func TestGroupCommitBatches(t *testing.T) {
	g := NewGroupCommitter(newLog(t))
	const n = 64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tk := g.Enqueue([]wal.Record{{Type: wal.TypeStatement, Data: []byte(fmt.Sprintf("stmt %d", i))}})
			ack, err := tk.Wait()
			if err != nil {
				errs <- err
				return
			}
			if ack.GroupSize < 1 {
				errs <- fmt.Errorf("ack %+v", ack)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Records != n {
		t.Fatalf("records %d, want %d", st.Records, n)
	}
	if st.Fsyncs > n {
		t.Fatalf("fsyncs %d exceed commit count %d", st.Fsyncs, n)
	}
	if g.Size() == 0 {
		t.Fatal("size not tracked")
	}
	t.Logf("%d commits in %d fsyncs (max group %d)", n, st.Fsyncs, st.MaxGroup)
}

// TestGroupCommitFailureLatches: once a flush fails, that error reaches the
// whole group and every later enqueue — ordering after a lost record is
// never silently resumed.
func TestGroupCommitFailureLatches(t *testing.T) {
	in := faultfs.NewInjector()
	ffs := faultfs.New(vfs.OS, in)
	l, err := wal.Create(ffs, filepath.Join(t.TempDir(), "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	g := NewGroupCommitter(l)

	in.Arm(2, faultfs.ModeFail) // batch = WriteAt then Sync; fail the sync
	tk := g.Enqueue([]wal.Record{{Type: wal.TypeStatement, Data: []byte("doomed")}})
	if _, err := tk.Wait(); err == nil {
		t.Fatal("flush with failing fsync reported success")
	}
	if !in.Injected() {
		t.Fatal("fault never fired; test armed the wrong operation")
	}
	// The latch: later commits fail immediately, even with the fault gone
	// (re-arming far in the future clears the injector's sticky failure).
	in.Arm(1<<30, faultfs.ModeFail)
	tk2 := g.Enqueue([]wal.Record{{Type: wal.TypeStatement, Data: []byte("after")}})
	if _, err := tk2.Wait(); err == nil {
		t.Fatal("enqueue after flush failure succeeded")
	}
	if err := g.Flush(); err == nil {
		t.Fatal("Flush after failure reported success")
	}
}

// TestFlushDrainsOwnTicket: Flush called with records still queued (e.g. by
// a checkpoint) completes them rather than deadlocking.
func TestFlushDrainsOwnTicket(t *testing.T) {
	g := NewGroupCommitter(newLog(t))
	tk := g.Enqueue([]wal.Record{{Type: wal.TypeStatement, Data: []byte("queued")}})
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
}
