// Package faultfs wraps a vfs.FS with deterministic fault injection: it
// counts every mutating filesystem operation (writes, fsyncs, renames,
// removes, truncates, file creations) and, when armed, makes the Nth one
// fail — cleanly, as a short write, or as a torn write that claims success
// while persisting only a prefix. After the trigger the filesystem "crashes":
// every subsequent mutating operation fails, so no later write can paper
// over the damage. The recovery test suite runs a workload once to count
// operations, then re-runs it once per operation with the fault armed at
// that index — an exhaustive enumeration of crash points through the
// persistence path.
package faultfs

import (
	"errors"
	"io/fs"
	"os"
	"sync"

	"probdb/internal/vfs"
)

// ErrInjected is the error every injected fault (and every operation after
// the simulated crash) returns.
var ErrInjected = errors.New("faultfs: injected fault")

// Mode selects what happens at the trigger operation.
type Mode int

const (
	// ModeFail makes the trigger operation fail without side effects.
	ModeFail Mode = iota
	// ModeShortWrite persists a prefix of the trigger write and returns an
	// error (a partial write the caller observes).
	ModeShortWrite
	// ModeTornWrite persists a prefix of the trigger write but reports
	// success — the write is torn silently, as when a crash interrupts an
	// acknowledged page-cache write. The crash is observed one operation
	// later. Non-write triggers fall back to ModeFail.
	ModeTornWrite
)

// Injector is the shared fault policy. One Injector may back several FS
// wrappers (data dir and WAL traffic count against the same clock).
type Injector struct {
	mu       sync.Mutex
	ops      int  // mutating operations observed
	armed    bool // fault scheduled
	trigger  int  // 1-based op index that faults
	mode     Mode
	crashed  bool // sticky post-trigger state
	injected bool // trigger fired at least once
}

// NewInjector returns a disarmed injector that merely counts operations.
func NewInjector() *Injector { return &Injector{} }

// Arm schedules a fault at the n-th mutating operation from now (1-based)
// and resets the op counter and crash state.
func (in *Injector) Arm(n int, mode Mode) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ops = 0
	in.armed = true
	in.trigger = n
	in.mode = mode
	in.crashed = false
	in.injected = false
}

// Ops returns the number of mutating operations observed since the last
// Arm (or since creation).
func (in *Injector) Ops() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// Injected reports whether the armed fault has fired.
func (in *Injector) Injected() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// outcome is the injector's decision for one mutating operation.
type outcome int

const (
	okOp outcome = iota
	failOp
	shortOp // write a prefix, return error
	tornOp  // write a prefix, return success, crash afterwards
)

// step advances the operation clock and decides this operation's fate.
func (in *Injector) step() outcome {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return failOp
	}
	in.ops++
	if !in.armed || in.ops != in.trigger {
		return okOp
	}
	in.injected = true
	in.crashed = true
	switch in.mode {
	case ModeShortWrite:
		return shortOp
	case ModeTornWrite:
		return tornOp
	default:
		return failOp
	}
}

// New wraps base so that mutating operations consult the injector.
func New(base vfs.FS, in *Injector) vfs.FS {
	return &faultFS{base: base, in: in}
}

type faultFS struct {
	base vfs.FS
	in   *Injector
}

func (f *faultFS) OpenFile(name string, flag int, perm fs.FileMode) (vfs.File, error) {
	// Creating or truncating a file mutates the directory; opening for
	// read/write does not (the writes themselves are counted).
	if flag&(os.O_CREATE|os.O_TRUNC) != 0 {
		if f.in.step() != okOp {
			return nil, ErrInjected
		}
	}
	file, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{base: file, in: f.in}, nil
}

func (f *faultFS) Rename(oldpath, newpath string) error {
	if f.in.step() != okOp {
		return ErrInjected
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *faultFS) Remove(name string) error {
	if f.in.step() != okOp {
		return ErrInjected
	}
	return f.base.Remove(name)
}

func (f *faultFS) MkdirAll(path string, perm fs.FileMode) error {
	// Data-dir creation precedes the workload; not a counted crash point.
	return f.base.MkdirAll(path, perm)
}

func (f *faultFS) Glob(pattern string) ([]string, error) { return f.base.Glob(pattern) }

func (f *faultFS) Stat(name string) (fs.FileInfo, error) { return f.base.Stat(name) }

func (f *faultFS) SyncDir(dir string) error {
	if f.in.step() != okOp {
		return ErrInjected
	}
	return f.base.SyncDir(dir)
}

type faultFile struct {
	base vfs.File
	in   *Injector
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) { return f.base.ReadAt(p, off) }

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	switch f.in.step() {
	case okOp:
		return f.base.WriteAt(p, off)
	case shortOp:
		n, err := f.base.WriteAt(p[:len(p)/2], off)
		if err != nil {
			return n, err
		}
		return n, ErrInjected
	case tornOp:
		if _, err := f.base.WriteAt(p[:len(p)/2], off); err != nil {
			return 0, err
		}
		return len(p), nil // claims success; the crash surfaces next op
	default:
		return 0, ErrInjected
	}
}

func (f *faultFile) Truncate(size int64) error {
	if f.in.step() != okOp {
		return ErrInjected
	}
	return f.base.Truncate(size)
}

func (f *faultFile) Sync() error {
	if f.in.step() != okOp {
		return ErrInjected
	}
	return f.base.Sync()
}

func (f *faultFile) Stat() (fs.FileInfo, error) { return f.base.Stat() }

// Close is never a crash point: a crashed process's descriptors close.
func (f *faultFile) Close() error { return f.base.Close() }
