// Package vfs abstracts the filesystem operations the persistence path
// performs — file I/O, renames, directory fsyncs — behind a small interface
// so the crash-safety layer can be exercised against a fault-injecting
// implementation (internal/vfs/faultfs) as well as the real OS. Every
// durability-relevant operation the engine, WAL, and pager perform flows
// through an FS, which is what makes the fault-injection recovery suite's
// crash-point enumeration exhaustive rather than best-effort.
package vfs

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is an open file handle. Offsets are explicit (ReadAt/WriteAt) so
// callers own their positioning and the interface stays trivially wrappable.
type File interface {
	io.ReaderAt
	io.WriterAt
	io.Closer
	// Truncate changes the file's size.
	Truncate(size int64) error
	// Sync flushes the file's contents to stable storage.
	Sync() error
	// Stat reports the file's metadata (notably its size).
	Stat() (fs.FileInfo, error)
}

// FS is the set of filesystem operations the persistence path uses.
type FS interface {
	// OpenFile opens a file with the given flags and permissions.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm fs.FileMode) error
	// Glob lists the files matching a shell pattern.
	Glob(pattern string) ([]string, error)
	// Stat reports a file's metadata.
	Stat(name string) (fs.FileInfo, error)
	// SyncDir fsyncs a directory, making renames and file creations under
	// it durable.
	SyncDir(dir string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) Glob(pattern string) ([]string, error) { return filepath.Glob(pattern) }

func (osFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
