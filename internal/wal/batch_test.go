package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"probdb/internal/vfs"
)

// TestAppendBatchRoundTrip: a batch lands as ordinary records — one write,
// one fsync, but on reopen indistinguishable from individual appends.
func TestAppendBatchRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(vfs.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	batch := []Record{
		{Type: TypeTxnStmt, Data: EncodeTxn(7, "INSERT INTO t VALUES (1)")},
		{Type: TypeTxnStmt, Data: EncodeTxn(7, "INSERT INTO t VALUES (2)")},
		{Type: TypeTxnCommit, Data: EncodeTxn(7, "")},
		{Type: TypeStatement, Data: []byte("INSERT INTO u VALUES (3)")},
	}
	if err := l.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	l.Close()

	_, recs, err := Open(vfs.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(batch) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(batch))
	}
	for i, r := range recs {
		if r.Type != batch[i].Type || !bytes.Equal(r.Data, batch[i].Data) {
			t.Fatalf("record %d: type %d data %q", i, r.Type, r.Data)
		}
	}
}

// TestAppendBatchTornPrefix: a crash can tear a batch at any byte; reopen
// must recover exactly the batch's intact record prefix — never a partial
// record, never anything past the tear.
func TestAppendBatchTornPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(vfs.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	var batch []Record
	for i := 0; i < 4; i++ {
		batch = append(batch, Record{Type: TypeTxnStmt, Data: EncodeTxn(1, fmt.Sprintf("stmt %d", i))})
	}
	if err := l.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	full := l.Size()
	l.Close()

	for cut := int64(headerSize); cut < full; cut++ {
		dir := t.TempDir()
		torn := filepath.Join(dir, "wal.log")
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(torn, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, recs, err := Open(vfs.OS, torn)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		for i, r := range recs {
			if r.Type != batch[i].Type || !bytes.Equal(r.Data, batch[i].Data) {
				t.Fatalf("cut=%d: record %d mismatch", cut, i)
			}
		}
		// Every surviving record must be byte-identical to the prefix the
		// batch wrote; the torn record must be gone entirely.
		want := 0
		sz := int64(headerSize)
		for _, r := range batch {
			sz += EncodedSize(len(r.Data))
			if sz <= cut {
				want++
			}
		}
		if len(recs) != want {
			t.Fatalf("cut=%d: %d records, want %d", cut, len(recs), want)
		}
		l2.Close()
	}
}

// TestEncodeDecodeTxn round-trips transaction framing and rejects garbage.
func TestEncodeDecodeTxn(t *testing.T) {
	for _, id := range []uint64{0, 1, 127, 128, 1 << 40} {
		for _, sql := range []string{"", "INSERT INTO t VALUES (1)"} {
			id2, sql2, err := DecodeTxn(EncodeTxn(id, sql))
			if err != nil || id2 != id || sql2 != sql {
				t.Fatalf("roundtrip(%d, %q) = (%d, %q, %v)", id, sql, id2, sql2, err)
			}
		}
	}
	if _, _, err := DecodeTxn(nil); err == nil {
		t.Fatal("decoded an empty transaction record")
	}
	if _, _, err := DecodeTxn([]byte{0xff}); err == nil {
		t.Fatal("decoded a truncated uvarint")
	}
}
