package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// testEncodeRecord builds one valid on-disk record (test-side mirror of Append).
func testEncodeRecord(t Type, data []byte) []byte {
	buf := make([]byte, recHdrSize+1+len(data))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(1+len(data)))
	buf[recHdrSize] = byte(t)
	copy(buf[recHdrSize+1:], data)
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(buf[recHdrSize:], castagnoli))
	return buf
}

// FuzzDecode feeds arbitrary bytes to the WAL record decoder — the surface
// recovery runs over whatever a crash left on disk. It must never panic,
// must report a valid prefix no longer than the input, and every record it
// returns must round-trip: re-encoding the records must reproduce exactly
// the bytes it declared valid.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(testEncodeRecord(TypeStatement, []byte("CREATE TABLE t (k INT)")))
	two := append(testEncodeRecord(TypeStatement, []byte("a")), testEncodeRecord(TypeStatement, []byte("bb"))...)
	f.Add(two)
	f.Add(two[:len(two)-3])              // torn tail
	f.Add(append(two, 0xde, 0xad, 0xbe)) // trailing garbage
	huge := make([]byte, recHdrSize)
	binary.LittleEndian.PutUint32(huge[0:4], 1<<31) // absurd length prefix
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, validLen := Decode(data)
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("valid prefix %d out of range [0,%d]", validLen, len(data))
		}
		var re []byte
		for _, r := range recs {
			if len(r.Data)+1 > MaxRecord {
				t.Fatalf("decoded record exceeds MaxRecord: %d", len(r.Data))
			}
			re = append(re, testEncodeRecord(r.Type, r.Data)...)
		}
		if int64(len(re)) != validLen || !bytes.Equal(re, data[:validLen]) {
			t.Fatalf("round trip mismatch: %d records, valid %d", len(recs), validLen)
		}
	})
}
