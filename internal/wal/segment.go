package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"probdb/internal/vfs"
)

// This file is the read side of WAL shipping: a leader serving a replica's
// WALFetch needs record-aligned raw bytes out of its retained log files
// without disturbing the writer. Offsets here are *record-stream* offsets —
// byte 0 is the first record header, the file magic excluded — because that
// is the coordinate system of the replication LSN (stable across the
// file-level concerns of magic headers and generation boundaries).

// HeaderLen is the byte length of the file magic preceding the record
// stream: file offset = HeaderLen + record-stream offset. Exported so the
// shipping layer can convert between the two coordinate systems.
const HeaderLen = headerSize

// StreamLen returns the log's current record-stream length — Size() minus
// the file magic — which is this generation's contribution to the
// replication LSN once its appends are durable.
func (l *Log) StreamLen() int64 { return l.size - int64(headerSize) }

// StreamSize returns the intact record-stream length of the log file at
// path: the bytes of whole, checksummed records after the magic header.
// For a cleanly rolled generation this is the file size minus the header;
// a torn tail (crash during the final append of a generation) simply ends
// the stream early, mirroring Open's truncation rule.
func StreamSize(fsys vfs.FS, path string) (int64, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	raw := make([]byte, st.Size())
	if _, err := readFullAt(f, raw, 0); err != nil {
		return 0, fmt.Errorf("wal: read %s: %w", path, err)
	}
	if len(raw) < headerSize || string(raw[:headerSize]) != magic {
		return 0, fmt.Errorf("%w: %s is not a WAL file", ErrBadMagic, path)
	}
	_, validLen := Decode(raw[headerSize:])
	return validLen, nil
}

// ReadSegment reads whole records from the log file at path, starting at
// record-stream offset from and never past limit — the caller's durability
// frontier, which is always record-aligned because appends advance it by
// whole batches. At most maxBytes are returned, except that the first
// record is always returned whole even if it alone exceeds maxBytes (so a
// tailing replica always makes progress). Every byte in [from, limit) is a
// durability promise, so any malformed header or checksum mismatch inside
// the window is reported as an error, never silently skipped: shipping
// corrupt history would replicate the corruption.
//
// An empty (nil) result means from == limit: nothing new.
func ReadSegment(fsys vfs.FS, path string, from, limit int64, maxBytes int) ([]byte, error) {
	if from < 0 || from > limit {
		return nil, fmt.Errorf("wal: segment window [%d, %d) invalid", from, limit)
	}
	if from == limit {
		return nil, nil
	}
	if maxBytes < 1 {
		maxBytes = 1
	}
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	end := from + int64(maxBytes)
	if end > limit {
		end = limit
	}
	buf := make([]byte, end-from)
	if _, err := readFullAt(f, buf, int64(headerSize)+from); err != nil {
		return nil, fmt.Errorf("wal: read segment %s@%d: %w", path, from, err)
	}
	n, rerr := alignedPrefix(buf, limit-from)
	if rerr != nil {
		return nil, fmt.Errorf("wal: %s@%d: %w", path, from, rerr)
	}
	if n > 0 {
		return buf[:n], nil
	}

	// The first record alone is larger than the window. Read its header
	// (re-reading: the window may have been shorter than a header) and then
	// the record whole.
	var hdr [recHdrSize]byte
	if limit-from < int64(recHdrSize) {
		return nil, fmt.Errorf("wal: %s@%d: %d bytes before limit cannot hold a record", path, from, limit-from)
	}
	if _, err := readFullAt(f, hdr[:], int64(headerSize)+from); err != nil {
		return nil, fmt.Errorf("wal: read segment %s@%d: %w", path, from, err)
	}
	recLen := binary.LittleEndian.Uint32(hdr[:4])
	if recLen < 1 || recLen > MaxRecord {
		return nil, fmt.Errorf("wal: %s@%d: bad record length %d", path, from, recLen)
	}
	whole := int64(recHdrSize) + int64(recLen)
	if from+whole > limit {
		return nil, fmt.Errorf("wal: %s@%d: record of %d bytes crosses the durability frontier %d", path, from, whole, limit)
	}
	buf = make([]byte, whole)
	if _, err := readFullAt(f, buf, int64(headerSize)+from); err != nil {
		return nil, fmt.Errorf("wal: read segment %s@%d: %w", path, from, err)
	}
	if crc32.Checksum(buf[recHdrSize:], castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, fmt.Errorf("wal: %s@%d: record checksum mismatch", path, from)
	}
	return buf, nil
}

// alignedPrefix walks whole records fully contained in b and returns the
// length of that prefix. streamLeft is how many stream bytes remain before
// the caller's limit; a record that would extend past it, or a damaged
// header/checksum, is corruption inside the durable window and errors. A
// record that merely extends past b (but not the limit) ends the prefix
// cleanly — the next fetch picks it up.
func alignedPrefix(b []byte, streamLeft int64) (int, error) {
	off := 0
	for {
		if len(b)-off < recHdrSize {
			return off, nil
		}
		n := binary.LittleEndian.Uint32(b[off : off+4])
		if n < 1 || n > MaxRecord {
			return 0, fmt.Errorf("bad record length %d at stream offset +%d", n, off)
		}
		whole := recHdrSize + int(n)
		if int64(off+whole) > streamLeft {
			return 0, fmt.Errorf("record of %d bytes at stream offset +%d crosses the durability frontier", whole, off)
		}
		if off+whole > len(b) {
			return off, nil
		}
		sum := binary.LittleEndian.Uint32(b[off+4 : off+8])
		if crc32.Checksum(b[off+recHdrSize:off+whole], castagnoli) != sum {
			return 0, fmt.Errorf("record checksum mismatch at stream offset +%d", off)
		}
		off += whole
	}
}
