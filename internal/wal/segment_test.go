package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"probdb/internal/vfs"
)

// writeTestLog creates a log with n statement records and returns its path
// plus each record's encoded stream length.
func writeTestLog(t *testing.T, n int) (string, *Log, []int64) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.0.log")
	l, err := Create(vfs.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int64
	for i := 0; i < n; i++ {
		data := []byte(fmt.Sprintf("INSERT INTO t (k) VALUES (%d)", i))
		if err := l.Append(TypeStatement, data); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, EncodedSize(len(data)))
	}
	return path, l, sizes
}

func TestStreamSize(t *testing.T) {
	path, l, sizes := writeTestLog(t, 5)
	defer l.Close()
	var want int64
	for _, s := range sizes {
		want += s
	}
	got, err := StreamSize(vfs.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("StreamSize = %d, want %d", got, want)
	}
	if got+int64(headerSize) != l.Size() {
		t.Fatalf("StreamSize %d + header != log size %d", got, l.Size())
	}

	// A torn tail ends the stream early without error.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err = StreamSize(vfs.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("StreamSize with torn tail = %d, want %d", got, want)
	}

	if _, err := StreamSize(vfs.OS, filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestReadSegmentWalk fetches the whole log in segments of every small
// maxBytes and checks the concatenation reproduces the record stream
// byte-for-byte, record-aligned at every step.
func TestReadSegmentWalk(t *testing.T) {
	path, l, _ := writeTestLog(t, 7)
	defer l.Close()
	limit, err := StreamSize(vfs.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := raw[headerSize:]

	for _, maxBytes := range []int{1, 13, 40, 100, 1 << 20} {
		var got []byte
		from := int64(0)
		for from < limit {
			seg, err := ReadSegment(vfs.OS, path, from, limit, maxBytes)
			if err != nil {
				t.Fatalf("maxBytes %d from %d: %v", maxBytes, from, err)
			}
			if len(seg) == 0 {
				t.Fatalf("maxBytes %d from %d: no progress", maxBytes, from)
			}
			// Every segment must itself decode as whole records.
			recs, n := Decode(seg)
			if n != int64(len(seg)) || len(recs) == 0 {
				t.Fatalf("maxBytes %d from %d: segment not record-aligned (%d of %d bytes)", maxBytes, from, n, len(seg))
			}
			got = append(got, seg...)
			from += int64(len(seg))
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("maxBytes %d: reassembled stream differs", maxBytes)
		}
	}

	// At the frontier: nothing new.
	seg, err := ReadSegment(vfs.OS, path, limit, limit, 1<<20)
	if err != nil || len(seg) != 0 {
		t.Fatalf("at frontier: %v, %d bytes", err, len(seg))
	}
}

// TestReadSegmentRespectsLimit proves bytes past the durability frontier —
// present in the file but not yet fsync-acknowledged — are never shipped.
func TestReadSegmentRespectsLimit(t *testing.T) {
	path, l, sizes := writeTestLog(t, 4)
	defer l.Close()
	limit := sizes[0] + sizes[1] // pretend only the first two are durable
	var got []byte
	from := int64(0)
	for from < limit {
		seg, err := ReadSegment(vfs.OS, path, from, limit, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, seg...)
		from += int64(len(seg))
	}
	recs, n := Decode(got)
	if n != int64(len(got)) || len(recs) != 2 {
		t.Fatalf("shipped %d records (%d aligned bytes), want 2", len(recs), n)
	}
}

// TestReadSegmentCorruption: damage inside the durable window must error,
// never be skipped or shipped.
func TestReadSegmentCorruption(t *testing.T) {
	path, l, sizes := writeTestLog(t, 3)
	l.Close()
	limit := sizes[0] + sizes[1] + sizes[2]

	// Flip a payload byte of the second record.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := headerSize + int(sizes[0]) + recHdrSize + 3
	raw[off] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := ReadSegment(vfs.OS, path, 0, limit, 1<<20); err == nil {
		t.Fatal("corrupt window shipped without error")
	}
	// The single-record slow path must also catch it.
	if _, err := ReadSegment(vfs.OS, path, sizes[0], limit, 1); err == nil {
		t.Fatal("corrupt record shipped via single-record path")
	}
	// The intact first record before the damage is still servable.
	seg, err := ReadSegment(vfs.OS, path, 0, sizes[0], 1<<20)
	if err != nil || int64(len(seg)) != sizes[0] {
		t.Fatalf("intact prefix: %v, %d bytes", err, len(seg))
	}

	// A window that is not record-aligned at its limit errors too.
	if _, err := ReadSegment(vfs.OS, path, 0, sizes[0]-1, 1<<20); err == nil {
		t.Fatal("misaligned limit accepted")
	}
}
