// Package wal is the engine's write-ahead log: an append-only file of
// length-prefixed, CRC32C-checksummed records, fsync'd on every append. The
// engine logs each mutating statement here *before* applying it, so a crash
// at any point leaves the log as the authoritative tail of history since the
// last checkpoint: on startup the engine replays every intact record and a
// torn or half-written tail record — the signature of a crash mid-append —
// fails its checksum and is truncated away rather than interpreted.
//
// On-disk layout:
//
//	| 8-byte magic "probwal1" |
//	| u32 LE payload length | u32 LE CRC32C(payload) | payload | ...
//
// where payload is one type byte followed by the record data. The CRC uses
// the Castagnoli polynomial (the checksum iSCSI and ext4 use), matching the
// page checksums in internal/storage.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"probdb/internal/vfs"
)

// Type discriminates WAL record kinds.
type Type byte

const (
	// TypeStatement is a mutating SQL statement, logged verbatim before it
	// executes. Replay re-executes it against the reloaded catalog.
	TypeStatement Type = 1
	// TypeTxnStmt is one mutating statement of an explicit transaction:
	// a uvarint transaction ID followed by the SQL text. Replay buffers
	// these and applies them only when the matching TypeTxnCommit record
	// is seen — a transaction whose commit record is missing or torn was
	// never acknowledged and is discarded whole.
	TypeTxnStmt Type = 2
	// TypeTxnCommit marks a transaction durable: a uvarint transaction ID
	// and nothing else. It is always appended in the same batch as the
	// transaction's TypeTxnStmt records, so a torn batch can only lose a
	// suffix — either the commit record survives (and so do all statements
	// before it) or the transaction vanishes atomically.
	TypeTxnCommit Type = 3
)

// Record is one decoded WAL record.
type Record struct {
	Type Type
	Data []byte
}

const (
	magic      = "probwal1"
	headerSize = len(magic)
	recHdrSize = 8 // u32 length + u32 crc
	// MaxRecord bounds one record's payload so a corrupt length prefix
	// cannot trigger an enormous allocation during replay.
	MaxRecord = 16 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrBroken reports that an earlier append failed in a way that left the
// log's tail state unknown; the log refuses further appends.
var ErrBroken = errors.New("wal: log broken by earlier write failure")

// ErrBadMagic reports a log file whose header is absent or torn. Because
// the magic is the first write to a fresh log and is fsync'd before Create
// returns — and no append is acknowledged until after that — a bad-magic
// log provably holds no committed records: the engine may recreate it.
var ErrBadMagic = errors.New("wal: bad magic")

// Log is an open write-ahead log positioned at its end.
type Log struct {
	f      vfs.File
	path   string
	size   int64 // bytes of durable, valid log (header + intact records)
	broken bool
}

// Create makes a fresh, empty log at path (truncating any previous file)
// and fsyncs it. The caller is responsible for fsyncing the directory if
// the file is new.
func Create(fsys vfs.FS, path string) (*Log, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create %s: %w", path, err)
	}
	l := &Log{f: f, path: path, size: int64(headerSize)}
	if _, err := f.WriteAt([]byte(magic), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: create %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: create %s: %w", path, err)
	}
	return l, nil
}

// Open reads an existing log, returning every intact record in order. A
// torn tail — an incomplete header, a length past end-of-file, or a
// checksum mismatch — marks the end of history: everything from the first
// damaged byte on is truncated so subsequent appends extend a clean tail.
// Records after a damaged one are unreachable by construction (the log is
// strictly sequential), so truncation never discards an intact record that
// replay could have used.
func Open(fsys vfs.FS, path string) (*Log, []Record, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	raw := make([]byte, st.Size())
	if _, err := readFullAt(f, raw, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: read %s: %w", path, err)
	}
	if len(raw) < headerSize || string(raw[:headerSize]) != magic {
		f.Close()
		return nil, nil, fmt.Errorf("%w: %s is not a WAL file", ErrBadMagic, path)
	}
	recs, validLen := Decode(raw[headerSize:])
	l := &Log{f: f, path: path, size: int64(headerSize) + validLen}
	if l.size < st.Size() {
		if err := f.Truncate(l.size); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	return l, recs, nil
}

// Decode parses a record stream (the bytes after the file magic) and
// returns the intact prefix's records plus its length in bytes. It never
// fails: damage simply ends the valid prefix.
func Decode(b []byte) (recs []Record, validLen int64) {
	off := 0
	for {
		if len(b)-off < recHdrSize {
			return recs, int64(off)
		}
		n := binary.LittleEndian.Uint32(b[off : off+4])
		sum := binary.LittleEndian.Uint32(b[off+4 : off+8])
		if n < 1 || n > MaxRecord || int(n) > len(b)-off-recHdrSize {
			return recs, int64(off)
		}
		payload := b[off+recHdrSize : off+recHdrSize+int(n)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return recs, int64(off)
		}
		data := make([]byte, n-1)
		copy(data, payload[1:])
		recs = append(recs, Record{Type: Type(payload[0]), Data: data})
		off += recHdrSize + int(n)
	}
}

// encodeRecord appends the wire form of one record to buf.
func encodeRecord(buf []byte, t Type, data []byte) []byte {
	off := len(buf)
	buf = append(buf, make([]byte, recHdrSize)...)
	binary.LittleEndian.PutUint32(buf[off:off+4], uint32(1+len(data)))
	buf = append(buf, byte(t))
	buf = append(buf, data...)
	binary.LittleEndian.PutUint32(buf[off+4:off+8], crc32.Checksum(buf[off+recHdrSize:], castagnoli))
	return buf
}

// EncodedSize returns the on-disk size of one record with the given payload
// data length (header, type byte and data).
func EncodedSize(dataLen int) int64 { return int64(recHdrSize + 1 + dataLen) }

// Append encodes one record, writes it at the log's tail, and fsyncs. It
// returns only after the record is durable. On failure it truncates the
// tail back to the last durable record; if even that fails the log marks
// itself broken and refuses further appends (the engine must restart and
// recover).
func (l *Log) Append(t Type, data []byte) error {
	return l.AppendBatch([]Record{{Type: t, Data: data}})
}

// AppendBatch writes a group of records contiguously at the log's tail with
// ONE WriteAt and ONE fsync — the group-commit primitive. All records become
// durable together or, on a torn write, an intact prefix survives (each
// record is individually checksummed, so recovery keeps exactly the records
// whose bytes landed). Failure semantics match Append: the tail is rolled
// back to the last durable record, and an unconfirmable rollback latches the
// log broken.
func (l *Log) AppendBatch(recs []Record) error {
	if l.broken {
		return ErrBroken
	}
	if len(recs) == 0 {
		return nil
	}
	var buf []byte
	for _, r := range recs {
		if len(r.Data)+1 > MaxRecord {
			return fmt.Errorf("wal: record of %d bytes exceeds limit %d", len(r.Data), MaxRecord)
		}
		buf = encodeRecord(buf, r.Type, r.Data)
	}
	if _, err := l.f.WriteAt(buf, l.size); err != nil {
		l.rollback()
		return fmt.Errorf("wal: append: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		l.rollback()
		return fmt.Errorf("wal: append sync: %w", err)
	}
	l.size += int64(len(buf))
	return nil
}

// rollback tries to cut a possibly half-written record back off the tail.
// The record's checksum makes this belt-and-braces: even if the truncate
// fails, recovery will reject the damaged tail. But a *complete* record
// whose statement was reported failed must not survive, hence the broken
// latch when truncation cannot be confirmed.
func (l *Log) rollback() {
	if err := l.f.Truncate(l.size); err != nil {
		l.broken = true
		return
	}
	if err := l.f.Sync(); err != nil {
		l.broken = true
	}
}

// EncodeTxn builds the payload of a TypeTxnStmt or TypeTxnCommit record:
// the transaction ID as a uvarint followed by the statement text (empty for
// commit markers).
func EncodeTxn(txnID uint64, sql string) []byte {
	buf := binary.AppendUvarint(nil, txnID)
	return append(buf, sql...)
}

// DecodeTxn parses a TypeTxnStmt/TypeTxnCommit payload.
func DecodeTxn(data []byte) (txnID uint64, sql string, err error) {
	id, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, "", fmt.Errorf("wal: malformed transaction record")
	}
	return id, string(data[n:]), nil
}

// Size returns the valid log length in bytes (header included) — the
// engine's auto-checkpoint trigger reads this.
func (l *Log) Size() int64 { return l.size }

// Empty reports whether the log holds no records.
func (l *Log) Empty() bool { return l.size == int64(headerSize) }

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close closes the log file.
func (l *Log) Close() error { return l.f.Close() }

func readFullAt(f vfs.File, p []byte, off int64) (int, error) {
	n := 0
	for n < len(p) {
		m, err := f.ReadAt(p[n:], off+int64(n))
		n += m
		if err != nil {
			if err == io.EOF && n == len(p) {
				return n, nil
			}
			return n, err
		}
	}
	return n, nil
}
