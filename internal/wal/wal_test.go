package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"probdb/internal/vfs"
)

func TestAppendReopenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(vfs.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 50; i++ {
		data := []byte(fmt.Sprintf("INSERT INTO t VALUES (%d)", i))
		if err := l.Append(TypeStatement, data); err != nil {
			t.Fatal(err)
		}
		want = append(want, data)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, recs, err := Open(vfs.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.Type != TypeStatement || !bytes.Equal(r.Data, want[i]) {
			t.Fatalf("record %d = %q (type %d)", i, r.Data, r.Type)
		}
	}
}

// TestTornTailTruncated: a crash mid-append leaves a partial record; Open
// must return only the intact prefix and cut the damage off so later
// appends extend a clean tail.
func TestTornTailTruncated(t *testing.T) {
	for cut := 1; cut < 20; cut++ {
		path := filepath.Join(t.TempDir(), "wal.log")
		l, err := Create(vfs.OS, path)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append(TypeStatement, []byte("first statement")); err != nil {
			t.Fatal(err)
		}
		good := l.Size()
		if err := l.Append(TypeStatement, []byte("second statement")); err != nil {
			t.Fatal(err)
		}
		l.Close()

		// Tear the tail: keep only `cut` bytes of the second record.
		if err := os.Truncate(path, good+int64(cut)); err != nil {
			t.Fatal(err)
		}
		l2, recs, err := Open(vfs.OS, path)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || string(recs[0].Data) != "first statement" {
			t.Fatalf("cut=%d: records %v", cut, recs)
		}
		// The file shrank back to the intact prefix and appends work.
		if l2.Size() != good {
			t.Fatalf("cut=%d: size %d, want %d", cut, l2.Size(), good)
		}
		if err := l2.Append(TypeStatement, []byte("third")); err != nil {
			t.Fatal(err)
		}
		l2.Close()
		_, recs, err = Open(vfs.OS, path)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 2 || string(recs[1].Data) != "third" {
			t.Fatalf("cut=%d: after re-append, records %v", cut, recs)
		}
	}
}

// TestCorruptMiddleEndsReplay: flipping a byte in an early record must stop
// replay there — never resynchronize onto later garbage.
func TestCorruptMiddleEndsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(vfs.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(TypeStatement, []byte(fmt.Sprintf("stmt %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerSize+recHdrSize+2] ^= 0xff // corrupt record 0's payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, recs, err := Open(vfs.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != 0 {
		t.Fatalf("replay past a corrupt record: got %d records", len(recs))
	}
}

func TestBadMagicRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(path, []byte("not a wal file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(vfs.OS, path); err == nil {
		t.Fatal("opened a non-WAL file without error")
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(vfs.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(TypeStatement, make([]byte, MaxRecord)); err == nil {
		t.Fatal("oversized record accepted")
	}
}
