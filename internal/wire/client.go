package wire

import (
	"bufio"
	"fmt"
	"net"
	"time"
)

// ServerError is a query failure reported by the server in an Error frame —
// the remote analogue of the error query.DB.Exec returns.
type ServerError struct{ Msg string }

// Error implements error.
func (e *ServerError) Error() string { return e.Msg }

// DefaultCallTimeout bounds one request/response round trip (deadline on
// both the write and the read) unless SetCallTimeout overrides it. It is
// generous because a query may sit in the server's admission queue behind
// long-running work before it even starts executing.
const DefaultCallTimeout = 60 * time.Second

// Client is a synchronous connection to a probserve server: one outstanding
// request at a time (the session model the server implements). It is not
// safe for concurrent use; open one Client per goroutine.
//
// Every call (Query, Ping) runs under a deadline — DefaultCallTimeout
// unless changed with SetCallTimeout — so a hung server or half-dead
// network surfaces as a timeout error instead of blocking the caller
// forever.
type Client struct {
	conn    net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	timeout time.Duration
}

// Dial connects to a server at addr ("host:port").
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// RetryConfig tunes DialRetry's backoff loop. Zero values take defaults:
// 5 attempts, 100 ms base delay doubling to a 2 s cap.
type RetryConfig struct {
	Attempts  int
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

func (rc *RetryConfig) fill() {
	if rc.Attempts < 1 {
		rc.Attempts = 5
	}
	if rc.BaseDelay <= 0 {
		rc.BaseDelay = 100 * time.Millisecond
	}
	if rc.MaxDelay <= 0 {
		rc.MaxDelay = 2 * time.Second
	}
}

// DialRetry connects like Dial but retries with exponential backoff — the
// client-side answer to a server that is still replaying its WAL (startup
// recovery can briefly postpone the listener). It returns the last dial
// error after the attempts are exhausted.
func DialRetry(addr string, rc RetryConfig) (*Client, error) {
	rc.fill()
	delay := rc.BaseDelay
	var lastErr error
	for i := 0; i < rc.Attempts; i++ {
		if i > 0 {
			time.Sleep(delay)
			delay *= 2
			if delay > rc.MaxDelay {
				delay = rc.MaxDelay
			}
		}
		c, err := Dial(addr)
		if err == nil {
			return c, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("wire: dial %s failed after %d attempts: %w", addr, rc.Attempts, lastErr)
}

// NewClient wraps an established connection (for tests and custom dialers).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn), timeout: DefaultCallTimeout}
}

// SetCallTimeout changes the per-call deadline; 0 (or negative) disables
// deadlines entirely, e.g. for deliberately long analytical queries.
func (c *Client) SetCallTimeout(d time.Duration) { c.timeout = d }

// begin arms the connection deadline for one call; calls with deadlines
// disabled clear any leftover deadline.
func (c *Client) begin() error {
	if c.timeout <= 0 {
		return c.conn.SetDeadline(time.Time{})
	}
	return c.conn.SetDeadline(time.Now().Add(c.timeout))
}

// Query sends one statement and waits for its complete Result, draining a
// streamed response (RowBatch… ResultEnd) into one Table when the server
// chooses batch delivery. Server-side query failures come back as
// *ServerError; transport failures (including a deadline expiry, which for
// streamed results bounds each frame rather than the whole response) as
// ordinary errors. For incremental consumption use QueryStream directly.
func (c *Client) Query(sql string) (*Result, error) {
	st, err := c.QueryStream(sql)
	if err != nil {
		return nil, err
	}
	return st.Drain()
}

// Ping round-trips a Ping frame.
func (c *Client) Ping() error {
	if err := c.begin(); err != nil {
		return err
	}
	if err := c.send(FramePing, nil); err != nil {
		return err
	}
	t, payload, err := ReadFrame(c.r)
	if err != nil {
		return err
	}
	switch t {
	case FramePong:
		return nil
	case FrameError:
		// e.g. a connection-limit refusal sent before the server saw the Ping
		return &ServerError{Msg: string(payload)}
	default:
		return fmt.Errorf("wire: unexpected %v frame in response to Ping", t)
	}
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) send(t FrameType, payload []byte) error {
	if err := WriteFrame(c.w, t, payload); err != nil {
		return err
	}
	return c.w.Flush()
}
