package wire

import (
	"bufio"
	"fmt"
	"net"
	"time"
)

// ServerError is a query failure reported by the server in an Error frame —
// the remote analogue of the error query.DB.Exec returns.
type ServerError struct{ Msg string }

// Error implements error.
func (e *ServerError) Error() string { return e.Msg }

// Client is a synchronous connection to a probserve server: one outstanding
// request at a time (the session model the server implements). It is not
// safe for concurrent use; open one Client per goroutine.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a server at addr ("host:port").
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (for tests and custom dialers).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
}

// Query sends one statement and waits for its Result. Server-side query
// failures come back as *ServerError; transport failures as ordinary errors.
func (c *Client) Query(sql string) (*Result, error) {
	if err := c.send(FrameQuery, []byte(sql)); err != nil {
		return nil, err
	}
	t, payload, err := ReadFrame(c.r)
	if err != nil {
		return nil, err
	}
	switch t {
	case FrameResult:
		return DecodeResult(payload)
	case FrameError:
		return nil, &ServerError{Msg: string(payload)}
	default:
		return nil, fmt.Errorf("wire: unexpected %v frame in response to Query", t)
	}
}

// Ping round-trips a Ping frame.
func (c *Client) Ping() error {
	if err := c.send(FramePing, nil); err != nil {
		return err
	}
	t, payload, err := ReadFrame(c.r)
	if err != nil {
		return err
	}
	switch t {
	case FramePong:
		return nil
	case FrameError:
		// e.g. a connection-limit refusal sent before the server saw the Ping
		return &ServerError{Msg: string(payload)}
	default:
		return fmt.Errorf("wire: unexpected %v frame in response to Ping", t)
	}
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) send(t FrameType, payload []byte) error {
	if err := WriteFrame(c.w, t, payload); err != nil {
		return err
	}
	return c.w.Flush()
}
