package wire

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"probdb/internal/govern"
)

// ServerError is a query failure reported by the server in an Error frame —
// the remote analogue of the error query.DB.Exec returns. Structured
// frames (resultVersion 7) additionally carry a machine-readable Code and,
// for refusals the server guarantees were never executed, a RetryAfter
// backoff hint.
type ServerError struct {
	Msg        string
	Code       ErrCode
	RetryAfter time.Duration
}

// Error implements error.
func (e *ServerError) Error() string {
	if e.Code == ErrGeneric {
		return e.Msg
	}
	return fmt.Sprintf("%s (%s)", e.Msg, e.Code)
}

// Retryable reports whether resubmitting the statement is safe: true only
// for refusals issued before execution (overload, budget, queue deadline,
// read-only writes), so even non-idempotent writes can retry blindly.
func (e *ServerError) Retryable() bool { return e.Code != ErrGeneric }

// DefaultCallTimeout bounds one request/response round trip (deadline on
// both the write and the read) unless SetCallTimeout overrides it. It is
// generous because a query may sit in the server's admission queue behind
// long-running work before it even starts executing.
const DefaultCallTimeout = 60 * time.Second

// Client is a synchronous connection to a probserve server: one outstanding
// request at a time (the session model the server implements). It is not
// safe for concurrent use; open one Client per goroutine.
//
// Every call (Query, Ping) runs under a deadline — DefaultCallTimeout
// unless changed with SetCallTimeout — so a hung server or half-dead
// network surfaces as a timeout error instead of blocking the caller
// forever.
type Client struct {
	conn    net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	timeout time.Duration
}

// Dial connects to a server at addr ("host:port").
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// RetryConfig tunes DialRetry's backoff loop. Zero values take defaults:
// 5 attempts, 100 ms base delay doubling to a 2 s cap.
type RetryConfig struct {
	Attempts  int
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

func (rc *RetryConfig) fill() {
	if rc.Attempts < 1 {
		rc.Attempts = 5
	}
	if rc.BaseDelay <= 0 {
		rc.BaseDelay = 100 * time.Millisecond
	}
	if rc.MaxDelay <= 0 {
		rc.MaxDelay = 2 * time.Second
	}
}

// DialRetry connects like Dial but retries with jittered exponential
// backoff — the client-side answer to a server that is still replaying its
// WAL (startup recovery can briefly postpone the listener). The jitter
// matters after a restart: without it, every reconnecting client of a
// bounced server sleeps the identical schedule and stampedes back in
// lockstep. It returns the last dial error after the attempts are
// exhausted.
func DialRetry(addr string, rc RetryConfig) (*Client, error) {
	rc.fill()
	var lastErr error
	for i := 0; i < rc.Attempts; i++ {
		if i > 0 {
			time.Sleep(govern.Backoff(i-1, rc.BaseDelay, rc.MaxDelay))
		}
		c, err := Dial(addr)
		if err == nil {
			return c, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("wire: dial %s failed after %d attempts: %w", addr, rc.Attempts, lastErr)
}

// NewClient wraps an established connection (for tests and custom dialers).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn), timeout: DefaultCallTimeout}
}

// SetCallTimeout changes the per-call deadline; 0 (or negative) disables
// deadlines entirely, e.g. for deliberately long analytical queries.
func (c *Client) SetCallTimeout(d time.Duration) { c.timeout = d }

// begin arms the connection deadline for one call; calls with deadlines
// disabled clear any leftover deadline.
func (c *Client) begin() error {
	if c.timeout <= 0 {
		return c.conn.SetDeadline(time.Time{})
	}
	return c.conn.SetDeadline(time.Now().Add(c.timeout))
}

// Query sends one statement and waits for its complete Result, draining a
// streamed response (RowBatch… ResultEnd) into one Table when the server
// chooses batch delivery. Server-side query failures come back as
// *ServerError; transport failures (including a deadline expiry, which for
// streamed results bounds each frame rather than the whole response) as
// ordinary errors. For incremental consumption use QueryStream directly.
func (c *Client) Query(sql string) (*Result, error) {
	st, err := c.QueryStream(sql)
	if err != nil {
		return nil, err
	}
	return st.Drain()
}

// QueryRetry runs Query, resubmitting on retryable server refusals
// (overload, budget pressure, queue deadlines — all guaranteed never
// executed) up to attempts times. Each retry sleeps the server's
// RetryAfter hint when one was sent, else the shared jittered exponential
// curve; either way the hint is jittered so a rejected fleet does not
// resubmit in lockstep. Non-retryable errors and transport failures
// return immediately. Do not use inside an explicit transaction: a BEGIN
// may have succeeded even if a later statement was refused, and replaying
// one statement of a txn is not replaying the txn.
func (c *Client) QueryRetry(sql string, attempts int) (*Result, error) {
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			se, _ := lastErr.(*ServerError)
			if se != nil && se.RetryAfter > 0 {
				time.Sleep(govern.Jitter(se.RetryAfter))
			} else {
				time.Sleep(govern.Backoff(i-1, 50*time.Millisecond, 2*time.Second))
			}
		}
		res, err := c.Query(sql)
		if err == nil {
			return res, nil
		}
		se, ok := err.(*ServerError)
		if !ok || !se.Retryable() {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// Ping round-trips a Ping frame.
func (c *Client) Ping() error {
	if err := c.begin(); err != nil {
		return err
	}
	if err := c.send(FramePing, nil); err != nil {
		return err
	}
	t, payload, err := ReadFrame(c.r)
	if err != nil {
		return err
	}
	switch t {
	case FramePong:
		return nil
	case FrameError:
		// e.g. a connection-limit refusal sent before the server saw the Ping
		return DecodeError(payload)
	default:
		return fmt.Errorf("wire: unexpected %v frame in response to Ping", t)
	}
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) send(t FrameType, payload []byte) error {
	if err := WriteFrame(c.w, t, payload); err != nil {
		return err
	}
	return c.w.Flush()
}
