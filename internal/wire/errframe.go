package wire

import (
	"encoding/binary"
	"time"
)

// ErrCode classifies a server error for machine handling. The retryable
// codes all describe statements the server refused *before executing them*
// (admission queue full, memory budget pressure, queue-deadline expiry, a
// declared read-only mode for writes), so resubmitting after a backoff is
// safe for every statement kind, including non-idempotent writes.
type ErrCode uint8

const (
	// ErrGeneric is any error without a finer classification (query
	// errors, txn conflicts, internal failures). Not blindly retryable.
	ErrGeneric ErrCode = iota
	// ErrOverloaded: the statement's admission class had no free slots.
	// Never executed; retry after the hint.
	ErrOverloaded
	// ErrBudget: a memory budget refused the query's working set. The
	// query was killed cleanly; retry after the hint (pressure is
	// transient) or rewrite with a LIMIT.
	ErrBudget
	// ErrQueueTimeout: the statement waited out its deadline in the
	// admission queue and was never executed. Retry after the hint.
	ErrQueueTimeout
	// ErrReadOnly: the engine is in a declared read-only mode (disk
	// pressure or a durability failure); writes are refused before
	// execution. Reads still work. Retryable once the operator clears
	// the condition — the hint is a polling interval, not a promise.
	ErrReadOnly
	// ErrShardUnavailable: a cluster router could not reach a shard the
	// statement needs (dial failure, mid-stream death, replica lag). The
	// statement either never executed or its partial results were
	// discarded — the router never forwards a truncated result — so
	// resubmitting after the hint is safe.
	ErrShardUnavailable
)

// String names the code for logs and rendered errors.
func (c ErrCode) String() string {
	switch c {
	case ErrGeneric:
		return "error"
	case ErrOverloaded:
		return "overloaded"
	case ErrBudget:
		return "budget-exceeded"
	case ErrQueueTimeout:
		return "queue-timeout"
	case ErrReadOnly:
		return "read-only"
	case ErrShardUnavailable:
		return "shard-unavailable"
	}
	return "error"
}

// errFrameMagic is the first payload byte of a structured Error frame
// (resultVersion 7). Pre-7 servers sent the bare message text; no
// statement error begins with byte 0x01 (messages are human-readable
// strings), so the magic byte cleanly discriminates the two layouts and
// a v7 client still decodes a v6 server's plain-text errors.
const errFrameMagic = 0x01

// EncodeError serializes a structured Error frame payload:
//
//	magic(0x01) code(1) retryAfterMillis(uvarint) message(bytes to end)
func EncodeError(code ErrCode, retryAfter time.Duration, msg string) []byte {
	buf := make([]byte, 0, len(msg)+12)
	buf = append(buf, errFrameMagic, byte(code))
	millis := retryAfter.Milliseconds()
	if millis < 0 {
		millis = 0
	}
	buf = binary.AppendUvarint(buf, uint64(millis))
	return append(buf, msg...)
}

// DecodeError parses an Error frame payload into a *ServerError. Payloads
// without the magic byte — older servers, or refusals written before the
// session layer (connection limit) — decode as a plain ErrGeneric with the
// whole payload as the message, so this function never fails.
func DecodeError(payload []byte) *ServerError {
	if len(payload) < 2 || payload[0] != errFrameMagic {
		return &ServerError{Msg: string(payload)}
	}
	code := ErrCode(payload[1])
	if code > ErrShardUnavailable {
		code = ErrGeneric
	}
	millis, n := binary.Uvarint(payload[2:])
	if n <= 0 {
		return &ServerError{Msg: string(payload)}
	}
	return &ServerError{
		Msg:        string(payload[2+n:]),
		Code:       code,
		RetryAfter: time.Duration(millis) * time.Millisecond,
	}
}
