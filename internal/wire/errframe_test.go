package wire

import (
	"testing"
	"time"
)

func TestErrFrameRoundTrip(t *testing.T) {
	cases := []struct {
		code  ErrCode
		after time.Duration
		msg   string
	}{
		{ErrOverloaded, 250 * time.Millisecond, "server: busy"},
		{ErrBudget, time.Second, "govern: query memory budget exceeded"},
		{ErrQueueTimeout, 0, "queue deadline"},
		{ErrReadOnly, 5 * time.Second, "engine is read-only: disk free below threshold"},
		{ErrGeneric, 0, "syntax error"},
	}
	for _, c := range cases {
		se := DecodeError(EncodeError(c.code, c.after, c.msg))
		if se.Code != c.code || se.RetryAfter != c.after || se.Msg != c.msg {
			t.Errorf("round trip %v: got %+v", c, se)
		}
		if want := c.code != ErrGeneric; se.Retryable() != want {
			t.Errorf("%v: Retryable() = %v, want %v", c.code, se.Retryable(), want)
		}
	}
}

func TestErrFrameLegacyPlainText(t *testing.T) {
	// Pre-v7 servers (and pre-session refusals) ship the bare message.
	se := DecodeError([]byte("query: unknown table \"t\""))
	if se.Code != ErrGeneric || se.RetryAfter != 0 || se.Msg != "query: unknown table \"t\"" {
		t.Fatalf("legacy decode: %+v", se)
	}
	if se.Retryable() {
		t.Fatal("plain-text errors must not be retryable")
	}
	// Empty and near-empty payloads must not panic.
	for _, p := range [][]byte{nil, {}, {errFrameMagic}, {errFrameMagic, 1}} {
		_ = DecodeError(p)
	}
}

func TestErrFrameRendering(t *testing.T) {
	se := DecodeError(EncodeError(ErrOverloaded, time.Second, "busy"))
	if got := se.Error(); got != "busy (overloaded)" {
		t.Fatalf("rendered error = %q", got)
	}
	plain := &ServerError{Msg: "syntax error"}
	if got := plain.Error(); got != "syntax error" {
		t.Fatalf("plain error = %q", got)
	}
}
