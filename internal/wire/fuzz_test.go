package wire

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"probdb/internal/core"
	"probdb/internal/dist"
)

// decodeAnyFrame is the fuzzed surface: frame parsing plus the payload
// decoder of whichever frame type arrives. It must return errors, never
// panic, on arbitrary input — the server reads these bytes straight off
// untrusted sockets.
func decodeAnyFrame(data []byte) {
	t, payload, err := ReadFrame(bytes.NewReader(data))
	if err != nil {
		return
	}
	switch t {
	case FrameResult:
		_, _ = DecodeResult(payload) //nolint:errcheck // errors are the expected outcome
	case FrameRowBatch:
		_, _ = DecodeRowBatch(payload) //nolint:errcheck
	case FrameResultEnd:
		_, _ = DecodeResultEnd(payload) //nolint:errcheck
	case FrameError:
		_ = DecodeError(payload)
	case FrameWALFetch:
		_, _, _ = DecodeWALFetch(payload) //nolint:errcheck
	case FrameWALSegment:
		_, _ = DecodeWALSegment(payload) //nolint:errcheck
	case FrameQuery:
		_ = string(payload)
	}
}

// FuzzDecodeFrame mirrors internal/query's fuzz contract for the network
// surface. Seeds cover every frame type, a structurally valid Result with
// pdf cells, and a batch of mutated valid payloads.
func FuzzDecodeFrame(f *testing.F) {
	frame := func(t FrameType, payload []byte) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, t, payload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, byte(FramePing)})
	f.Add(frame(FrameQuery, []byte("SELECT * FROM t WHERE PROB(x) > 0.5")))
	f.Add(frame(FrameError, []byte("boom")))
	f.Add(frame(FramePong, nil))
	rich := EncodeResult(&Result{
		Message:  "ok",
		Affected: 2,
		Stats:    Stats{Rows: 2, LatencyMicros: 99, PageReads: 3, PageHits: 8, PageWrites: 1},
		Table: &Table{
			Name: "t",
			Cols: []Column{
				{Name: "k", Type: core.IntType},
				{Name: "x", Type: core.FloatType, Uncertain: true},
			},
			Rows: []Row{
				{Exists: 1, Cells: []Cell{
					{Kind: CellValue, Value: core.Int(1)},
					{Kind: CellPDF, PDF: dist.NewGaussian(20, 5)},
				}},
				{Exists: 0.25, Cells: []Cell{
					{Kind: CellValue, Value: core.Str("s")},
					{Kind: CellNone},
				}},
			},
		},
	})
	f.Add(frame(FrameResult, rich))
	// Deterministic mutations of the valid Result frame, so `go test` (which
	// only runs the seed corpus) already exercises the malformed paths.
	r := rand.New(rand.NewSource(7))
	valid := frame(FrameResult, rich)
	for i := 0; i < 64; i++ {
		m := append([]byte{}, valid...)
		for k := 0; k <= r.Intn(4); k++ {
			m[r.Intn(len(m))] ^= byte(1 << r.Intn(8))
		}
		f.Add(m)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		decodeAnyFrame(data)
	})
}

// FuzzDecodeError fuzzes the structured error-frame decoder — the magic
// 0x01 payload of resultVersion 7. DecodeError promises to never fail (a
// payload without the magic is a legacy plain-text error), so the contract
// under fuzzing is: never panic, always return a non-nil *ServerError, and
// clamp unknown codes to ErrGeneric so a newer server cannot make an older
// client treat an unknown refusal as retryable-with-meaning.
func FuzzDecodeError(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("table t not found"))
	f.Add(EncodeError(ErrGeneric, 0, "boom"))
	f.Add(EncodeError(ErrOverloaded, 250*time.Millisecond, "admission queue full"))
	f.Add(EncodeError(ErrBudget, time.Second, "budget"))
	f.Add(EncodeError(ErrQueueTimeout, 0, ""))
	f.Add(EncodeError(ErrReadOnly, 5*time.Second, "disk watchdog"))
	f.Add(EncodeError(ErrShardUnavailable, 100*time.Millisecond, "shard 2 down"))
	f.Add([]byte{0x01})                                    // magic alone (too short)
	f.Add([]byte{0x01, 0xff})                              // unknown code, no hint
	f.Add([]byte{0x01, 0x02, 0xff})                        // truncated uvarint hint
	f.Add(append([]byte{0x01, 0x03}, make([]byte, 12)...)) // over-long hint
	r := rand.New(rand.NewSource(13))
	valid := EncodeError(ErrOverloaded, 123*time.Millisecond, "queue full, retry later")
	for i := 0; i < 64; i++ {
		m := append([]byte{}, valid...)
		for k := 0; k <= r.Intn(4); k++ {
			m[r.Intn(len(m))] ^= byte(1 << r.Intn(8))
		}
		f.Add(m)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		se := DecodeError(data)
		if se == nil {
			t.Fatalf("DecodeError(%x) = nil", data)
		}
		if se.Code > ErrShardUnavailable {
			t.Fatalf("DecodeError(%x) code %d out of range", data, se.Code)
		}
		if se.RetryAfter < 0 {
			t.Fatalf("DecodeError(%x) negative hint %v", data, se.RetryAfter)
		}
		_ = se.Error()
		_ = se.Retryable()
	})
}

// reassembleFrames is the fuzzed streaming surface: read a frame sequence
// off untrusted bytes and reassemble RowBatch frames through the same
// BatchAssembler the client's Query drain uses, stopping at the first
// framing/decode/sequencing error or at ResultEnd — exactly what a client
// facing a hostile or corrupted server does.
func reassembleFrames(data []byte) {
	r := bytes.NewReader(data)
	var asm BatchAssembler
	for {
		t, payload, err := ReadFrame(r)
		if err != nil {
			return
		}
		switch t {
		case FrameRowBatch:
			b, err := DecodeRowBatch(payload)
			if err != nil {
				return
			}
			if asm.Add(b) != nil {
				return
			}
		case FrameResultEnd:
			_, _ = DecodeResultEnd(payload) //nolint:errcheck
			return
		default:
			return
		}
	}
}

// FuzzRowBatchReassembly fuzzes multi-frame stream reassembly: decode plus
// the assembler's sequencing/header/width invariants must reject, never
// panic on, arbitrary frame sequences. Seeds include a full valid stream
// and deterministic mutations of it.
func FuzzRowBatchReassembly(f *testing.F) {
	cols := []Column{
		{Name: "k", Type: core.IntType},
		{Name: "x", Type: core.FloatType, Uncertain: true},
	}
	row := func(i int) Row {
		return Row{Exists: 1, Cells: []Cell{
			{Kind: CellValue, Value: core.Int(int64(i))},
			{Kind: CellPDF, PDF: dist.NewGaussian(float64(i), 1)},
		}}
	}
	var stream bytes.Buffer
	for seq, b := range []*RowBatch{
		{Seq: 0, Name: "t", Cols: cols, Rows: []Row{row(1), row(2)}},
		{Seq: 1, Rows: []Row{row(3)}},
	} {
		if err := WriteFrame(&stream, FrameRowBatch, EncodeRowBatch(b)); err != nil {
			f.Fatalf("seq %d: %v", seq, err)
		}
	}
	if err := WriteFrame(&stream, FrameResultEnd, EncodeResultEnd(&Result{Affected: 3})); err != nil {
		f.Fatal(err)
	}
	valid := stream.Bytes()
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 64; i++ {
		m := append([]byte{}, valid...)
		for k := 0; k <= r.Intn(4); k++ {
			m[r.Intn(len(m))] ^= byte(1 << r.Intn(8))
		}
		f.Add(m)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		reassembleFrames(data)
	})
}

// TestReassembleFrameSoup is the plain-test variant of the reassembly
// contract, mirroring TestDecodeFrameSoup.
func TestReassembleFrameSoup(t *testing.T) {
	cols := []Column{{Name: "x", Type: core.FloatType, Uncertain: true}}
	var stream bytes.Buffer
	for _, b := range []*RowBatch{
		{Seq: 0, Name: "t", Cols: cols,
			Rows: []Row{{Exists: 1, Cells: []Cell{{Kind: CellPDF, PDF: dist.NewGaussian(0, 1)}}}}},
		{Seq: 1, Rows: []Row{{Exists: 0.5, Cells: []Cell{{Kind: CellNone}}}}},
	} {
		if err := WriteFrame(&stream, FrameRowBatch, EncodeRowBatch(b)); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteFrame(&stream, FrameResultEnd, EncodeResultEnd(&Result{Affected: 2})); err != nil {
		t.Fatal(err)
	}
	valid := stream.Bytes()
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5000; trial++ {
		var data []byte
		switch trial % 3 {
		case 0:
			data = make([]byte, r.Intn(96))
			r.Read(data)
		case 1:
			data = valid[:r.Intn(len(valid))]
		default:
			data = append([]byte{}, valid...)
			for k := 0; k <= r.Intn(8); k++ {
				data[r.Intn(len(data))] ^= byte(1 << r.Intn(8))
			}
		}
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("panic on %x: %v", data, rec)
				}
			}()
			reassembleFrames(data)
		}()
	}
}

// TestDecodeFrameSoup is the non-fuzz variant of the same contract: random
// byte soup and random truncations/mutations of valid frames must never
// panic in plain `go test` runs.
func TestDecodeFrameSoup(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameResult, EncodeResult(&Result{
		Message: "ok",
		Table: &Table{
			Name: "t",
			Cols: []Column{{Name: "x", Type: core.FloatType, Uncertain: true}},
			Rows: []Row{{Exists: 1, Cells: []Cell{{Kind: CellPDF, PDF: dist.NewGaussian(0, 1)}}}},
		},
	})); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for trial := 0; trial < 5000; trial++ {
		var data []byte
		switch trial % 3 {
		case 0: // pure soup
			data = make([]byte, r.Intn(64))
			r.Read(data)
		case 1: // truncated valid frame
			data = valid[:r.Intn(len(valid))]
		default: // mutated valid frame
			data = append([]byte{}, valid...)
			for k := 0; k <= r.Intn(8); k++ {
				data[r.Intn(len(data))] ^= byte(1 << r.Intn(8))
			}
		}
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("panic on %x: %v", data, rec)
				}
			}()
			decodeAnyFrame(data)
		}()
	}
}
