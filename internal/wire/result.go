package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"

	"probdb/internal/core"
	"probdb/internal/dist"
)

// resultVersion guards the Result payload layout. Version 2 appended the
// WALBytes counter to the stats block; version 3 appended the pdf-mass
// cache hit/miss counters; version 4 appended the planner counters (index
// probes, index-pruned tuples, planner fallbacks); version 5 introduced
// streamed result delivery (RowBatch/ResultEnd frames, which reuse this
// version and the column/row codec below); version 6 appended the
// group-commit/transaction counters (WAL fsyncs, group size, conflicts)
// and the in-transaction flag bit; version 7 introduced structured Error
// frames (ErrCode + RetryAfter, see errframe.go) and appended the
// governance counters (admission rejections, shed bytes, queue wait);
// version 8 appended the kernel counters (tuples evaluated on the
// vectorized columnar lanes vs the scalar reference path).
const resultVersion = 8

// maxColumns bounds a decoded column count — far above any real schema,
// low enough that a hostile count cannot drive a large allocation.
const maxColumns = 1 << 12

// Stats is the per-query execution accounting carried in every Result
// frame: result cardinality, wall latency, and the buffer-pool traffic the
// statement caused (storage.Stats deltas) — the Fig. 5 quantities — plus
// the bytes the statement appended to the write-ahead log (the durability
// cost of a mutation; zero for reads and for checkpointed-away windows) and
// the statement's traffic against the engine's pdf-mass memoization cache.
// The planner trio accounts for the statement's use of access paths:
// IndexProbes is how many index lookups answered part of the WHERE clause,
// IndexPruned how many tuples those probes excluded without evaluating
// their pdfs, and PlannerFallbacks how many times an applicable index was
// bypassed (multi-table query, unindexable conjunct, runtime degradation).
// The group-commit trio makes WAL batching observable per statement:
// WALFsyncs is 1 when this statement's session performed its commit group's
// fsync (it "led" the group) and 0 when another session's fsync carried it —
// under concurrent commit traffic the fleet-wide mean is well below 1.
// WALGroupSize is the number of WAL records the carrying fsync made durable
// (0 for reads). TxnConflicts counts first-writer-wins aborts observed
// engine-wide during the statement (normally 0 or, for a failed COMMIT, 1).
// The governance trio (version 7) makes overload behavior observable:
// Rejections is the server's cumulative admission-rejection count,
// ShedBytes the cumulative memory the server budget reclaimed from caches
// and snapshots under pressure (both monotone server-wide gauges sampled at
// statement end), and QueueWaitMicros how long this statement sat in the
// admission queue before a worker picked it up.
// The kernel pair (version 8) makes the execution strategy of the filter
// kernels observable: VecTuples counts tuples the statement evaluated on
// the vectorized columnar lanes, ScalarTuples those that took the scalar
// per-tuple reference path (odd distributions, non-vectorizable selections,
// or vectorization disabled).
type Stats struct {
	Rows             uint64
	LatencyMicros    uint64
	PageReads        uint64
	PageHits         uint64
	PageWrites       uint64
	WALBytes         uint64
	MassCacheHits    uint64
	MassCacheMiss    uint64
	IndexProbes      uint64
	IndexPruned      uint64
	PlannerFallbacks uint64
	WALFsyncs        uint64
	WALGroupSize     uint64
	TxnConflicts     uint64
	Rejections       uint64
	ShedBytes        uint64
	QueueWaitMicros  uint64
	VecTuples        uint64
	ScalarTuples     uint64
}

// Result is one statement's outcome as shipped to the client: a message
// and affected count for commands, a Table for queries, and Stats always.
// InTxn reports whether the session is inside an explicit transaction after
// this statement — shells use it for a prompt indicator.
type Result struct {
	Message  string
	Affected uint64
	Stats    Stats
	Table    *Table
	InTxn    bool
}

// Column describes one visible result column.
type Column struct {
	Name      string
	Type      core.AttrType
	Uncertain bool
}

// Table is a result relation: certain cells as values, uncertain cells as
// the column's marginal pdf (decoded back into a live dist.Dist on the
// client, so PROB-style post-processing needs no extra round trip).
type Table struct {
	Name string
	Cols []Column
	Rows []Row
}

// Row is one result tuple: its existence probability (mass of the tuple's
// pdfs; < 1 for partial pdfs) and one cell per visible column.
type Row struct {
	Exists float64
	Cells  []Cell
}

// CellKind discriminates the variants of a result cell.
type CellKind byte

// Cell kinds: a certain value, an uncertain column's marginal pdf, or
// nothing (the pdf was unavailable, rendered as "?").
const (
	CellValue CellKind = iota
	CellPDF
	CellNone
)

// Cell is one result cell.
type Cell struct {
	Kind  CellKind
	Value core.Value // when Kind == CellValue
	PDF   dist.Dist  // when Kind == CellPDF
}

// String renders the result for a console, mirroring query.Result.String.
func (r *Result) String() string {
	if r.Table != nil {
		return r.Table.Render()
	}
	return r.Message
}

// Render formats the table like core.Table.Render: header line, then one
// bracketed line per tuple with pdfs in their symbolic form.
func (t *Table) Render() string {
	var b strings.Builder
	b.WriteString(HeaderLine(t.Name, t.Cols))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(RenderRow(t.Cols, row))
		b.WriteByte('\n')
	}
	return b.String()
}

// HeaderLine formats a result header ("name (col TYPE, ...)", no trailing
// newline). A streaming client prints it once, before the first row batch.
func HeaderLine(name string, cols []Column) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		u := ""
		if c.Uncertain {
			u = " UNCERTAIN"
		}
		parts[i] = fmt.Sprintf("%s %v%s", c.Name, c.Type, u)
	}
	return fmt.Sprintf("%s (%s)", name, strings.Join(parts, ", "))
}

// RenderRow formats one result row (no trailing newline). Render is built
// from HeaderLine and RenderRow, so printing a stream row by row yields the
// same bytes as rendering the assembled table.
func RenderRow(cols []Column, row Row) string {
	cells := make([]string, 0, len(cols)+1)
	for i, c := range cols {
		cell := row.Cells[i]
		switch cell.Kind {
		case CellValue:
			cells = append(cells, fmt.Sprintf("%s=%s", c.Name, cell.Value.Render()))
		case CellPDF:
			cells = append(cells, fmt.Sprintf("%s=%v", c.Name, cell.PDF))
		default:
			cells = append(cells, "?")
		}
	}
	if row.Exists < 1 {
		cells = append(cells, fmt.Sprintf("Pr(exists)=%.4g", row.Exists))
	}
	return fmt.Sprintf("  [%s]", strings.Join(cells, ", "))
}

// FromTable converts an executed core.Table into its wire form: certain
// columns by value, uncertain columns by their marginal pdf.
func FromTable(t *core.Table) *Table {
	return &Table{Name: t.Name, Cols: ColumnsOf(t), Rows: RowsOf(t, t.Tuples())}
}

// ColumnsOf lists a core table's visible columns in wire form — the header
// a streamed result ships once, ahead of its first row batch.
func ColumnsOf(t *core.Table) []Column {
	cols := t.Schema().Columns()
	out := make([]Column, len(cols))
	for i, c := range cols {
		out[i] = Column{Name: c.Name, Type: c.Type, Uncertain: c.Uncertain}
	}
	return out
}

// RowsOf converts a batch of tuples from t into wire rows. The streaming
// server calls it once per operator batch, so a query's rows cross the
// conversion boundary O(batch) at a time rather than all at once.
func RowsOf(t *core.Table, tups []*core.Tuple) []Row {
	cols := t.Schema().Columns()
	rows := make([]Row, 0, len(tups))
	for _, tup := range tups {
		row := Row{Exists: t.ExistenceProb(tup), Cells: make([]Cell, len(cols))}
		for i, c := range cols {
			if c.Uncertain {
				d, err := t.DistOf(tup, c.Name)
				if err != nil {
					row.Cells[i] = Cell{Kind: CellNone}
				} else {
					row.Cells[i] = Cell{Kind: CellPDF, PDF: d}
				}
			} else {
				v, ok := t.Value(tup, c.Name)
				if !ok {
					row.Cells[i] = Cell{Kind: CellNone}
				} else {
					row.Cells[i] = Cell{Kind: CellValue, Value: v}
				}
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// encodeDist serializes a pdf with the dist codec. Representations outside
// the codec (e.g. affine-transformed views) are collapsed to their generic
// grid/discrete form first — the same fallback the paper's storage layer
// uses for non-closed-form results.
func encodeDist(d dist.Dist) (b []byte) {
	defer func() {
		if recover() != nil {
			b = dist.Encode(dist.Collapse(d, dist.Options{}))
		}
	}()
	return dist.Encode(d)
}

// EncodeResult serializes a Result frame payload.
func EncodeResult(r *Result) []byte {
	buf := []byte{resultVersion}
	var flags byte
	if r.Table != nil {
		flags |= 1
	}
	if r.InTxn {
		flags |= 2
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, r.Affected)
	buf = appendString(buf, r.Message)
	buf = binary.AppendUvarint(buf, r.Stats.Rows)
	buf = binary.AppendUvarint(buf, r.Stats.LatencyMicros)
	buf = binary.AppendUvarint(buf, r.Stats.PageReads)
	buf = binary.AppendUvarint(buf, r.Stats.PageHits)
	buf = binary.AppendUvarint(buf, r.Stats.PageWrites)
	buf = binary.AppendUvarint(buf, r.Stats.WALBytes)
	buf = binary.AppendUvarint(buf, r.Stats.MassCacheHits)
	buf = binary.AppendUvarint(buf, r.Stats.MassCacheMiss)
	buf = binary.AppendUvarint(buf, r.Stats.IndexProbes)
	buf = binary.AppendUvarint(buf, r.Stats.IndexPruned)
	buf = binary.AppendUvarint(buf, r.Stats.PlannerFallbacks)
	buf = binary.AppendUvarint(buf, r.Stats.WALFsyncs)
	buf = binary.AppendUvarint(buf, r.Stats.WALGroupSize)
	buf = binary.AppendUvarint(buf, r.Stats.TxnConflicts)
	buf = binary.AppendUvarint(buf, r.Stats.Rejections)
	buf = binary.AppendUvarint(buf, r.Stats.ShedBytes)
	buf = binary.AppendUvarint(buf, r.Stats.QueueWaitMicros)
	buf = binary.AppendUvarint(buf, r.Stats.VecTuples)
	buf = binary.AppendUvarint(buf, r.Stats.ScalarTuples)
	if r.Table == nil {
		return buf
	}
	t := r.Table
	buf = appendString(buf, t.Name)
	buf = appendColumns(buf, t.Cols)
	buf = binary.AppendUvarint(buf, uint64(len(t.Rows)))
	for _, row := range t.Rows {
		buf = appendRow(buf, row)
	}
	return buf
}

// appendColumns serializes a column list (count-prefixed), shared by Result
// and RowBatch header frames.
func appendColumns(buf []byte, cols []Column) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(cols)))
	for _, c := range cols {
		buf = appendString(buf, c.Name)
		buf = append(buf, byte(c.Type))
		if c.Uncertain {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// appendRow serializes one row: the existence probability then one tagged
// cell per column.
func appendRow(buf []byte, row Row) []byte {
	buf = appendFloat(buf, row.Exists)
	for _, cell := range row.Cells {
		buf = append(buf, byte(cell.Kind))
		switch cell.Kind {
		case CellValue:
			buf = appendValue(buf, cell.Value)
		case CellPDF:
			enc := encodeDist(cell.PDF)
			buf = binary.AppendUvarint(buf, uint64(len(enc)))
			buf = append(buf, enc...)
		}
	}
	return buf
}

// DecodeResult parses a Result frame payload. It never panics on malformed
// input: every length is bounds-checked against the remaining buffer and
// pdf payloads go through dist.Decode's validated path.
func DecodeResult(payload []byte) (*Result, error) {
	d := &rdecoder{buf: payload}
	ver, err := d.byte()
	if err != nil {
		return nil, err
	}
	if ver != resultVersion {
		return nil, fmt.Errorf("wire: result version %d (want %d)", ver, resultVersion)
	}
	flags, err := d.byte()
	if err != nil {
		return nil, err
	}
	r := &Result{}
	if r.Affected, err = d.uvarint(); err != nil {
		return nil, err
	}
	if r.Message, err = d.string(); err != nil {
		return nil, err
	}
	for _, p := range []*uint64{&r.Stats.Rows, &r.Stats.LatencyMicros, &r.Stats.PageReads, &r.Stats.PageHits, &r.Stats.PageWrites, &r.Stats.WALBytes, &r.Stats.MassCacheHits, &r.Stats.MassCacheMiss, &r.Stats.IndexProbes, &r.Stats.IndexPruned, &r.Stats.PlannerFallbacks, &r.Stats.WALFsyncs, &r.Stats.WALGroupSize, &r.Stats.TxnConflicts, &r.Stats.Rejections, &r.Stats.ShedBytes, &r.Stats.QueueWaitMicros, &r.Stats.VecTuples, &r.Stats.ScalarTuples} {
		if *p, err = d.uvarint(); err != nil {
			return nil, err
		}
	}
	r.InTxn = flags&2 != 0
	if flags&1 == 0 {
		return r, nil
	}
	t := &Table{}
	if t.Name, err = d.string(); err != nil {
		return nil, err
	}
	if t.Cols, err = d.columns(); err != nil {
		return nil, err
	}
	nrows, err := d.rowCount(len(t.Cols))
	if err != nil {
		return nil, err
	}
	for ri := 0; ri < nrows; ri++ {
		row, err := d.row(len(t.Cols))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	if d.off != len(d.buf) {
		return nil, d.err("%d trailing bytes", len(d.buf)-d.off)
	}
	r.Table = t
	return r, nil
}

// columns parses a count-prefixed column list.
func (d *rdecoder) columns() ([]Column, error) {
	ncols, err := d.count(maxColumns)
	if err != nil {
		return nil, err
	}
	cols := make([]Column, ncols)
	for i := range cols {
		if cols[i].Name, err = d.string(); err != nil {
			return nil, err
		}
		ty, err := d.byte()
		if err != nil {
			return nil, err
		}
		u, err := d.byte()
		if err != nil {
			return nil, err
		}
		cols[i].Type = core.AttrType(ty)
		cols[i].Uncertain = u == 1
	}
	return cols, nil
}

// rowCount parses a row count and rejects counts the remaining buffer
// cannot possibly hold: a row costs at least 8 bytes (existence float) plus
// one kind byte per column.
func (d *rdecoder) rowCount(ncols int) (int, error) {
	nrows, err := d.count(MaxPayload)
	if err != nil {
		return 0, err
	}
	if nrows*(8+max(ncols, 1)) > len(d.buf)-d.off+8+max(ncols, 1) {
		return 0, d.err("row count %d exceeds buffer", nrows)
	}
	return nrows, nil
}

// row parses one row of ncols cells.
func (d *rdecoder) row(ncols int) (Row, error) {
	row := Row{Cells: make([]Cell, ncols)}
	var err error
	if row.Exists, err = d.float(); err != nil {
		return Row{}, err
	}
	for i := range row.Cells {
		kind, err := d.byte()
		if err != nil {
			return Row{}, err
		}
		switch CellKind(kind) {
		case CellValue:
			if row.Cells[i].Value, err = d.value(); err != nil {
				return Row{}, err
			}
			row.Cells[i].Kind = CellValue
		case CellPDF:
			n, err := d.count(MaxPayload)
			if err != nil {
				return Row{}, err
			}
			if n > len(d.buf)-d.off {
				return Row{}, d.err("pdf length %d exceeds buffer", n)
			}
			pd, used, err := dist.Decode(d.buf[d.off : d.off+n])
			if err != nil {
				return Row{}, fmt.Errorf("wire: pdf: %w", err)
			}
			if used != n {
				return Row{}, d.err("pdf has %d trailing bytes", n-used)
			}
			d.off += n
			row.Cells[i] = Cell{Kind: CellPDF, PDF: pd}
		case CellNone:
			row.Cells[i].Kind = CellNone
		default:
			return Row{}, d.err("unknown cell kind %d", kind)
		}
	}
	return row, nil
}

// Value wire tags (certain cells).
const (
	valNull byte = iota
	valInt
	valFloat
	valString
	valBool
)

func appendValue(buf []byte, v core.Value) []byte {
	switch v.Kind {
	case core.NullValue:
		return append(buf, valNull)
	case core.IntValue:
		buf = append(buf, valInt)
		return binary.AppendVarint(buf, v.I)
	case core.FloatValue:
		buf = append(buf, valFloat)
		return appendFloat(buf, v.F)
	case core.StringValue:
		buf = append(buf, valString)
		return appendString(buf, v.S)
	case core.BoolValue:
		buf = append(buf, valBool)
		if v.B {
			return append(buf, 1)
		}
		return append(buf, 0)
	}
	return append(buf, valNull)
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendFloat(buf []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
}

// rdecoder walks a Result payload with bounds checks.
type rdecoder struct {
	buf []byte
	off int
}

func (d *rdecoder) err(format string, args ...any) error {
	return fmt.Errorf("wire: decode at offset %d: %s", d.off, fmt.Sprintf(format, args...))
}

func (d *rdecoder) byte() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, d.err("unexpected end of payload")
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *rdecoder) float() (float64, error) {
	if d.off+8 > len(d.buf) {
		return 0, d.err("unexpected end of payload")
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v, nil
}

func (d *rdecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, d.err("bad uvarint")
	}
	d.off += n
	return v, nil
}

func (d *rdecoder) count(limit int) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(limit) {
		return 0, d.err("count %d exceeds limit %d", v, limit)
	}
	return int(v), nil
}

func (d *rdecoder) string() (string, error) {
	n, err := d.count(MaxPayload)
	if err != nil {
		return "", err
	}
	if n > len(d.buf)-d.off {
		return "", d.err("string length %d exceeds payload", n)
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s, nil
}

func (d *rdecoder) value() (core.Value, error) {
	tag, err := d.byte()
	if err != nil {
		return core.Null, err
	}
	switch tag {
	case valNull:
		return core.Null, nil
	case valInt:
		v, n := binary.Varint(d.buf[d.off:])
		if n <= 0 {
			return core.Null, d.err("bad int")
		}
		d.off += n
		return core.Int(v), nil
	case valFloat:
		f, err := d.float()
		if err != nil {
			return core.Null, err
		}
		return core.Float(f), nil
	case valString:
		s, err := d.string()
		if err != nil {
			return core.Null, err
		}
		return core.Str(s), nil
	case valBool:
		b, err := d.byte()
		if err != nil {
			return core.Null, err
		}
		return core.Bool(b == 1), nil
	}
	return core.Null, d.err("unknown value tag %d", tag)
}
