package wire

import (
	"encoding/binary"
	"fmt"
)

// This file is the streamed-result half of the protocol. A server executing
// a streamable SELECT answers a Query frame not with one Result but with a
// sequence
//
//	RowBatch(seq 0, header + rows) RowBatch(seq 1, rows) … ResultEnd(stats)
//
// so the client sees the first rows before the server's scan has finished,
// and neither side ever materializes the whole relation for the transport.
// The stats ride in the trailing ResultEnd because latency and page-I/O
// counters are only known once the last row has been produced. A query that
// fails mid-stream ends with an Error frame instead of ResultEnd — by then
// some batches may already have been delivered; the client surfaces the
// error and discards them.
//
// RowBatch payload layout (sharing resultVersion and the column/row codec
// with Result frames):
//
//	u8 version | uvarint seq | u8 flags | [name, columns]  (flags bit0)
//	          | uvarint ncols (only when no header) | uvarint nrows | rows
//
// Batch 0 must carry the header (flags bit0); later batches carry the
// column count alone so they remain independently decodable.

// batchHasHeader is the RowBatch flags bit marking an embedded header
// (table name + column list); set exactly on batch 0.
const batchHasHeader byte = 1

// RowBatch is one decoded RowBatch frame: a slice of a streamed result.
// Cols is non-nil exactly on the first batch (Seq 0), where Name is also
// meaningful.
type RowBatch struct {
	Seq  uint64
	Name string
	Cols []Column
	Rows []Row
}

// EncodeRowBatch serializes a RowBatch frame payload. The header (name and
// columns) is included iff b.Cols is non-nil, which the protocol requires
// exactly on Seq 0.
func EncodeRowBatch(b *RowBatch) []byte {
	buf := []byte{resultVersion}
	buf = binary.AppendUvarint(buf, b.Seq)
	if b.Cols != nil {
		buf = append(buf, batchHasHeader)
		buf = appendString(buf, b.Name)
		buf = appendColumns(buf, b.Cols)
	} else {
		buf = append(buf, 0)
		ncols := 0
		if len(b.Rows) > 0 {
			ncols = len(b.Rows[0].Cells)
		}
		buf = binary.AppendUvarint(buf, uint64(ncols))
	}
	buf = binary.AppendUvarint(buf, uint64(len(b.Rows)))
	for _, row := range b.Rows {
		buf = appendRow(buf, row)
	}
	return buf
}

// DecodeRowBatch parses a RowBatch frame payload. Like DecodeResult it
// never panics on malformed input; sequencing and header-placement rules
// are the BatchAssembler's job, not the codec's.
func DecodeRowBatch(payload []byte) (*RowBatch, error) {
	d := &rdecoder{buf: payload}
	ver, err := d.byte()
	if err != nil {
		return nil, err
	}
	if ver != resultVersion {
		return nil, fmt.Errorf("wire: row batch version %d (want %d)", ver, resultVersion)
	}
	b := &RowBatch{}
	if b.Seq, err = d.uvarint(); err != nil {
		return nil, err
	}
	flags, err := d.byte()
	if err != nil {
		return nil, err
	}
	var ncols int
	if flags&batchHasHeader != 0 {
		if b.Name, err = d.string(); err != nil {
			return nil, err
		}
		if b.Cols, err = d.columns(); err != nil {
			return nil, err
		}
		if b.Cols == nil {
			b.Cols = []Column{} // zero columns still marks "header present"
		}
		ncols = len(b.Cols)
	} else if ncols, err = d.count(maxColumns); err != nil {
		return nil, err
	}
	nrows, err := d.rowCount(ncols)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nrows; i++ {
		row, err := d.row(ncols)
		if err != nil {
			return nil, err
		}
		b.Rows = append(b.Rows, row)
	}
	if d.off != len(d.buf) {
		return nil, d.err("%d trailing bytes", len(d.buf)-d.off)
	}
	return b, nil
}

// EncodeResultEnd serializes a ResultEnd frame payload: a Result sans
// table (the rows already went out as batches). Any Table on r is ignored.
func EncodeResultEnd(r *Result) []byte {
	end := *r
	end.Table = nil
	return EncodeResult(&end)
}

// DecodeResultEnd parses a ResultEnd frame payload.
func DecodeResultEnd(payload []byte) (*Result, error) {
	r, err := DecodeResult(payload)
	if err != nil {
		return nil, err
	}
	if r.Table != nil {
		return nil, fmt.Errorf("wire: ResultEnd frame carries a table")
	}
	return r, nil
}

// ProtocolError is a violation of the streamed-result invariants: a batch
// whose seq duplicates, skips, or rewinds the expected sequence (e.g. a
// reconnect splicing a stale stream into a fresh one), a missing or
// repeated header, or a row wider than the header. It is typed — rather
// than a bare formatted error — so callers can distinguish "this peer is
// speaking the protocol wrong" (close the connection, never reorder or
// dedup silently) from transport failures they might retry.
type ProtocolError struct {
	// Seq and Want are the offending and expected batch sequence numbers
	// (equal when the violation is not a sequencing one).
	Seq, Want uint64
	Msg       string
}

// Error implements error.
func (e *ProtocolError) Error() string { return e.Msg }

// BatchAssembler reassembles a RowBatch sequence into one Table, enforcing
// the stream invariants: batches arrive in sequence starting at 0, the
// header appears on batch 0 and never again, and every row is as wide as
// the header. The client's Query drain and the reassembly fuzz target share
// it, so the fuzzer exercises exactly the code a hostile server would hit.
// All violations surface as *ProtocolError.
type BatchAssembler struct {
	t    *Table
	next uint64
}

// Add ingests one batch.
func (a *BatchAssembler) Add(b *RowBatch) error {
	if b.Seq != a.next {
		return &ProtocolError{Seq: b.Seq, Want: a.next,
			Msg: fmt.Sprintf("wire: row batch seq %d, want %d", b.Seq, a.next)}
	}
	if b.Seq == 0 {
		if b.Cols == nil {
			return &ProtocolError{Msg: "wire: first row batch has no header"}
		}
		a.t = &Table{Name: b.Name, Cols: b.Cols}
	} else if b.Cols != nil {
		return &ProtocolError{Seq: b.Seq, Want: b.Seq,
			Msg: fmt.Sprintf("wire: row batch %d repeats the header", b.Seq)}
	}
	for _, row := range b.Rows {
		if len(row.Cells) != len(a.t.Cols) {
			return &ProtocolError{Seq: b.Seq, Want: b.Seq,
				Msg: fmt.Sprintf("wire: row batch %d row has %d cells, header has %d columns",
					b.Seq, len(row.Cells), len(a.t.Cols))}
		}
		a.t.Rows = append(a.t.Rows, row)
	}
	a.next++
	return nil
}

// Table returns the relation assembled so far (nil before the first batch).
func (a *BatchAssembler) Table() *Table { return a.t }

// Stream is an in-progress streamed query result. Obtain one with
// Client.QueryStream, pull batches with NextBatch until it returns nil, then
// read the trailing stats with Result. A Stream must be fully drained (or
// the connection closed) before the Client is used again — the protocol is
// synchronous and the remaining frames are still in flight.
type Stream struct {
	c        *Client
	streamed bool // server chose batch delivery (vs one legacy Result frame)
	name     string
	cols     []Column
	pending  []Row // rows already received but not yet handed out
	next     uint64
	res      *Result
	done     bool
	err      error
}

// QueryStream sends one statement and returns a Stream over its result. If
// the server answers with a single Result frame (a non-streamable
// statement, or an older server), the Stream wraps it transparently: the
// rows arrive as one batch. Server-side failures before the first row come
// back as *ServerError.
//
// Each frame is awaited under the client's call timeout — the deadline
// bounds inter-frame gaps, not the whole (possibly long) stream.
func (c *Client) QueryStream(sql string) (*Stream, error) {
	if err := c.begin(); err != nil {
		return nil, err
	}
	if err := c.send(FrameQuery, []byte(sql)); err != nil {
		return nil, err
	}
	t, payload, err := ReadFrame(c.r)
	if err != nil {
		return nil, err
	}
	s := &Stream{c: c}
	switch t {
	case FrameResult:
		r, err := DecodeResult(payload)
		if err != nil {
			return nil, err
		}
		s.res = r
		if r.Table != nil {
			s.name = r.Table.Name
			s.cols = r.Table.Cols
			s.pending = r.Table.Rows
		} else {
			s.done = true
		}
		return s, nil
	case FrameRowBatch:
		b, err := DecodeRowBatch(payload)
		if err != nil {
			return nil, err
		}
		if b.Seq != 0 || b.Cols == nil {
			return nil, fmt.Errorf("wire: stream opened with batch seq %d (header %v)", b.Seq, b.Cols != nil)
		}
		s.streamed = true
		s.name = b.Name
		s.cols = b.Cols
		s.pending = b.Rows
		s.next = 1
		return s, nil
	case FrameError:
		return nil, DecodeError(payload)
	default:
		return nil, fmt.Errorf("wire: unexpected %v frame in response to Query", t)
	}
}

// Name is the result relation's name (valid immediately after QueryStream).
func (s *Stream) Name() string { return s.name }

// Columns is the result header (nil for row-less command results).
func (s *Stream) Columns() []Column { return s.cols }

// NextBatch returns the next non-empty batch of rows, or (nil, nil) once
// the stream is exhausted. A transport or decode error poisons the stream:
// the connection is desynchronized and should be closed. A *ServerError
// (the query failed mid-stream) leaves the connection reusable.
func (s *Stream) NextBatch() ([]Row, error) {
	if s.err != nil {
		return nil, s.err
	}
	if len(s.pending) > 0 {
		rows := s.pending
		s.pending = nil
		return rows, nil
	}
	if s.done || !s.streamed {
		// A wrapped single-Result stream is exhausted once its rows are out.
		s.done = true
		return nil, nil
	}
	for {
		if err := s.c.begin(); err != nil {
			return nil, s.fail(err)
		}
		t, payload, err := ReadFrame(s.c.r)
		if err != nil {
			return nil, s.fail(err)
		}
		switch t {
		case FrameRowBatch:
			b, err := DecodeRowBatch(payload)
			if err != nil {
				return nil, s.fail(err)
			}
			if b.Seq != s.next || b.Cols != nil {
				return nil, s.fail(fmt.Errorf("wire: row batch seq %d (want %d, no header)", b.Seq, s.next))
			}
			s.next++
			if len(b.Rows) > 0 {
				return b.Rows, nil
			}
		case FrameResultEnd:
			r, err := DecodeResultEnd(payload)
			if err != nil {
				return nil, s.fail(err)
			}
			s.res = r
			s.done = true
			return nil, nil
		case FrameError:
			// Clean protocol-level abort: don't poison the connection.
			s.done = true
			s.err = DecodeError(payload)
			return nil, s.err
		default:
			return nil, s.fail(fmt.Errorf("wire: unexpected %v frame mid-stream", t))
		}
	}
}

func (s *Stream) fail(err error) error {
	s.err = err
	s.done = true
	return err
}

// Result returns the query's stats and message, available once NextBatch
// has returned nil. For a streamed result its Table is nil — the rows went
// through NextBatch.
func (s *Stream) Result() (*Result, error) {
	if s.err != nil {
		return nil, s.err
	}
	if !s.done {
		return nil, fmt.Errorf("wire: Result before stream end")
	}
	return s.res, nil
}

// Drain consumes the rest of the stream and assembles the full Result —
// batches reassembled into a Table for streamed delivery, the server's own
// Table passed through for legacy delivery. It is how Client.Query is
// implemented.
func (s *Stream) Drain() (*Result, error) {
	var rows []Row
	for {
		batch, err := s.NextBatch()
		if err != nil {
			return nil, err
		}
		if batch == nil {
			break
		}
		rows = append(rows, batch...)
	}
	res, err := s.Result()
	if err != nil {
		return nil, err
	}
	if s.streamed {
		r := *res
		r.Table = &Table{Name: s.name, Cols: s.cols, Rows: rows}
		return &r, nil
	}
	return res, nil
}
