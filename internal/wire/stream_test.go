package wire

import (
	"errors"
	"net"
	"reflect"
	"testing"

	"probdb/internal/core"
	"probdb/internal/dist"
)

func testHeader() (string, []Column) {
	return "σ(readings)", []Column{
		{Name: "rid", Type: core.IntType},
		{Name: "value", Type: core.FloatType, Uncertain: true},
	}
}

func testRow(i int) Row {
	return Row{Exists: 1, Cells: []Cell{
		{Kind: CellValue, Value: core.Int(int64(i))},
		{Kind: CellPDF, PDF: dist.NewGaussian(float64(10+i), 2)},
	}}
}

// TestRowBatchRoundTrip encodes and decodes a header batch and a
// continuation batch.
func TestRowBatchRoundTrip(t *testing.T) {
	name, cols := testHeader()
	for _, in := range []*RowBatch{
		{Seq: 0, Name: name, Cols: cols, Rows: []Row{testRow(1), testRow(2)}},
		{Seq: 3, Rows: []Row{testRow(7)}},
		{Seq: 0, Name: "empty", Cols: cols}, // header-only batch (empty result)
	} {
		out, err := DecodeRowBatch(EncodeRowBatch(in))
		if err != nil {
			t.Fatalf("seq %d: %v", in.Seq, err)
		}
		if out.Seq != in.Seq || out.Name != in.Name {
			t.Fatalf("seq/name: %+v vs %+v", out, in)
		}
		if (out.Cols == nil) != (in.Cols == nil) || !reflect.DeepEqual(append([]Column{}, out.Cols...), append([]Column{}, in.Cols...)) {
			t.Fatalf("cols: %+v vs %+v", out.Cols, in.Cols)
		}
		if len(out.Rows) != len(in.Rows) {
			t.Fatalf("rows: %d vs %d", len(out.Rows), len(in.Rows))
		}
		for ri, row := range out.Rows {
			if row.Exists != in.Rows[ri].Exists || len(row.Cells) != len(in.Rows[ri].Cells) {
				t.Fatalf("row %d: %+v", ri, row)
			}
		}
	}
}

// TestRowBatchDecodeRejectsTruncations truncates a valid batch payload at
// every offset; each prefix must error, never panic.
func TestRowBatchDecodeRejectsTruncations(t *testing.T) {
	name, cols := testHeader()
	payload := EncodeRowBatch(&RowBatch{Seq: 0, Name: name, Cols: cols, Rows: []Row{testRow(1)}})
	for cut := 0; cut < len(payload); cut++ {
		if _, err := DecodeRowBatch(payload[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(payload))
		}
	}
	if _, err := DecodeRowBatch(append(append([]byte{}, payload...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestResultEndRoundTrip: stats and message survive; any table is stripped.
func TestResultEndRoundTrip(t *testing.T) {
	in := &Result{Message: "9 rows", Affected: 9,
		Stats: Stats{Rows: 9, LatencyMicros: 420, PageReads: 3, IndexProbes: 1}}
	out, err := DecodeResultEnd(EncodeResultEnd(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Message != in.Message || out.Affected != in.Affected || out.Stats != in.Stats || out.Table != nil {
		t.Fatalf("round trip: %+v", out)
	}
	// A table on the input is dropped, not encoded.
	withTable := *in
	withTable.Table = &Table{Name: "t"}
	if _, err := DecodeResultEnd(EncodeResultEnd(&withTable)); err != nil {
		t.Fatal(err)
	}
	// A raw Result payload with a table must be rejected as a ResultEnd.
	if _, err := DecodeResultEnd(EncodeResult(&withTable)); err == nil {
		t.Fatal("ResultEnd with table accepted")
	}
}

// TestBatchAssembler checks the stream invariants the assembler enforces.
func TestBatchAssembler(t *testing.T) {
	name, cols := testHeader()
	var a BatchAssembler
	if err := a.Add(&RowBatch{Seq: 0, Name: name, Cols: cols, Rows: []Row{testRow(1)}}); err != nil {
		t.Fatal(err)
	}
	if err := a.Add(&RowBatch{Seq: 1, Rows: []Row{testRow(2), testRow(3)}}); err != nil {
		t.Fatal(err)
	}
	if tb := a.Table(); tb.Name != name || len(tb.Rows) != 3 {
		t.Fatalf("assembled: %+v", tb)
	}

	for _, tc := range []struct {
		name string
		b    *RowBatch
	}{
		{"seq skip", &RowBatch{Seq: 3, Rows: []Row{testRow(4)}}},
		{"repeated header", &RowBatch{Seq: 2, Name: name, Cols: cols}},
		{"width mismatch", &RowBatch{Seq: 2, Rows: []Row{{Exists: 1, Cells: []Cell{{Kind: CellNone}}}}}},
	} {
		if err := a.Add(tc.b); err == nil {
			t.Fatalf("%s accepted", tc.name)
		}
	}

	var fresh BatchAssembler
	if err := fresh.Add(&RowBatch{Seq: 0, Rows: []Row{testRow(1)}}); err == nil {
		t.Fatal("headerless first batch accepted")
	}
}

// TestBatchAssemblerReconnectSeq models the reconnect hazard: a client
// assembled part of a stream, the connection dropped, and the resumed
// stream replays a batch it already delivered (duplicate seq) or resumes
// past the gap (out-of-order seq). Both must surface as a typed
// *ProtocolError naming the offending and expected sequence numbers — never
// silent reordering or deduplication — and must not mutate the assembled
// rows.
func TestBatchAssemblerReconnectSeq(t *testing.T) {
	name, cols := testHeader()
	var a BatchAssembler
	for seq, b := range []*RowBatch{
		{Seq: 0, Name: name, Cols: cols, Rows: []Row{testRow(1)}},
		{Seq: 1, Rows: []Row{testRow(2)}},
	} {
		if err := a.Add(b); err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
	}
	rowsBefore := len(a.Table().Rows)

	for _, tc := range []struct {
		name string
		b    *RowBatch
		want uint64
	}{
		// The peer re-sends the last batch it believes was unacked.
		{"duplicate seq after reconnect", &RowBatch{Seq: 1, Rows: []Row{testRow(2)}}, 2},
		// The peer resumes beyond the drop point, skipping seq 2.
		{"out-of-order seq after reconnect", &RowBatch{Seq: 3, Rows: []Row{testRow(9)}}, 2},
		// A stale pre-reconnect frame from the old stream's start.
		{"rewound seq after reconnect", &RowBatch{Seq: 0, Name: name, Cols: cols}, 2},
	} {
		err := a.Add(tc.b)
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		var pe *ProtocolError
		if !errors.As(err, &pe) {
			t.Fatalf("%s: error %T (%v) is not a *ProtocolError", tc.name, err, err)
		}
		if pe.Seq != tc.b.Seq || pe.Want != tc.want {
			t.Fatalf("%s: ProtocolError{Seq: %d, Want: %d}, want {%d, %d}",
				tc.name, pe.Seq, pe.Want, tc.b.Seq, tc.want)
		}
		if got := len(a.Table().Rows); got != rowsBefore {
			t.Fatalf("%s: assembled rows changed %d -> %d", tc.name, rowsBefore, got)
		}
	}

	// The assembler still accepts the correct continuation afterwards.
	if err := a.Add(&RowBatch{Seq: 2, Rows: []Row{testRow(3)}}); err != nil {
		t.Fatalf("valid continuation rejected: %v", err)
	}
}

// serveFrames runs a one-shot fake server on the other end of a pipe: it
// reads the Query frame, then writes the scripted response frames.
func serveFrames(t *testing.T, conn net.Conn, frames []struct {
	t FrameType
	p []byte
}) {
	t.Helper()
	go func() {
		defer conn.Close()
		if _, _, err := ReadFrame(conn); err != nil {
			return
		}
		for _, f := range frames {
			if err := WriteFrame(conn, f.t, f.p); err != nil {
				return
			}
		}
	}()
}

type scripted = []struct {
	t FrameType
	p []byte
}

// TestQueryStreamBatches drives a Stream over a scripted batch sequence:
// batches arrive incrementally, empty interior batches are skipped, and the
// trailing stats land in Result.
func TestQueryStreamBatches(t *testing.T) {
	name, cols := testHeader()
	cli, srv := net.Pipe()
	defer cli.Close()
	serveFrames(t, srv, scripted{
		{FrameRowBatch, EncodeRowBatch(&RowBatch{Seq: 0, Name: name, Cols: cols, Rows: []Row{testRow(1), testRow(2)}})},
		{FrameRowBatch, EncodeRowBatch(&RowBatch{Seq: 1})}, // empty interior batch
		{FrameRowBatch, EncodeRowBatch(&RowBatch{Seq: 2, Rows: []Row{testRow(3)}})},
		{FrameResultEnd, EncodeResultEnd(&Result{Affected: 3, Stats: Stats{Rows: 3, LatencyMicros: 7}})},
	})
	st, err := NewClient(cli).QueryStream(`SELECT * FROM readings`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Name() != name || len(st.Columns()) != 2 {
		t.Fatalf("header: %q %v", st.Name(), st.Columns())
	}
	var sizes []int
	for {
		rows, err := st.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if rows == nil {
			break
		}
		sizes = append(sizes, len(rows))
	}
	if !reflect.DeepEqual(sizes, []int{2, 1}) {
		t.Fatalf("batch sizes: %v", sizes)
	}
	res, err := st.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 3 || res.Stats.LatencyMicros != 7 {
		t.Fatalf("result: %+v", res)
	}
}

// TestQueryDrainsStreamedResult: Query over a streamed response assembles
// the same Result a legacy single-frame response would deliver.
func TestQueryDrainsStreamedResult(t *testing.T) {
	name, cols := testHeader()
	full := &Result{Affected: 3, Stats: Stats{Rows: 3},
		Table: &Table{Name: name, Cols: cols, Rows: []Row{testRow(1), testRow(2), testRow(3)}}}

	cli, srv := net.Pipe()
	defer cli.Close()
	serveFrames(t, srv, scripted{
		{FrameRowBatch, EncodeRowBatch(&RowBatch{Seq: 0, Name: name, Cols: cols, Rows: full.Table.Rows[:2]})},
		{FrameRowBatch, EncodeRowBatch(&RowBatch{Seq: 1, Rows: full.Table.Rows[2:]})},
		{FrameResultEnd, EncodeResultEnd(full)},
	})
	streamed, err := NewClient(cli).Query(`SELECT * FROM readings`)
	if err != nil {
		t.Fatal(err)
	}

	cli2, srv2 := net.Pipe()
	defer cli2.Close()
	serveFrames(t, srv2, scripted{{FrameResult, EncodeResult(full)}})
	legacy, err := NewClient(cli2).Query(`SELECT * FROM readings`)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := streamed.Table.Render(), legacy.Table.Render(); got != want {
		t.Fatalf("streamed render:\n%s\nlegacy render:\n%s", got, want)
	}
	if streamed.Affected != legacy.Affected || streamed.Stats != legacy.Stats {
		t.Fatalf("streamed %+v vs legacy %+v", streamed, legacy)
	}
}

// TestQueryStreamMidStreamError: an Error frame after some batches surfaces
// as *ServerError from NextBatch and from a draining Query.
func TestQueryStreamMidStreamError(t *testing.T) {
	name, cols := testHeader()
	frames := scripted{
		{FrameRowBatch, EncodeRowBatch(&RowBatch{Seq: 0, Name: name, Cols: cols, Rows: []Row{testRow(1)}})},
		{FrameError, []byte("query: disk on fire")},
	}
	cli, srv := net.Pipe()
	defer cli.Close()
	serveFrames(t, srv, frames)
	st, err := NewClient(cli).QueryStream(`SELECT * FROM readings`)
	if err != nil {
		t.Fatal(err)
	}
	if rows, err := st.NextBatch(); err != nil || len(rows) != 1 {
		t.Fatalf("first batch: %v rows, err %v", len(rows), err)
	}
	_, err = st.NextBatch()
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *ServerError", err)
	}
	if _, err := st.Result(); err == nil {
		t.Fatal("Result() succeeded after mid-stream error")
	}

	cli2, srv2 := net.Pipe()
	defer cli2.Close()
	serveFrames(t, srv2, frames)
	if _, err := NewClient(cli2).Query(`SELECT * FROM readings`); !errors.As(err, &se) {
		t.Fatalf("Query err = %v, want *ServerError", err)
	}
}

// TestQueryStreamRejectsBadSequence: a seq gap poisons the stream.
func TestQueryStreamRejectsBadSequence(t *testing.T) {
	name, cols := testHeader()
	cli, srv := net.Pipe()
	defer cli.Close()
	serveFrames(t, srv, scripted{
		{FrameRowBatch, EncodeRowBatch(&RowBatch{Seq: 0, Name: name, Cols: cols, Rows: []Row{testRow(1)}})},
		{FrameRowBatch, EncodeRowBatch(&RowBatch{Seq: 2, Rows: []Row{testRow(2)}})},
	})
	st, err := NewClient(cli).QueryStream(`SELECT * FROM readings`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.NextBatch(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.NextBatch(); err == nil {
		t.Fatal("seq gap accepted")
	}
	// The error is sticky.
	if _, err := st.NextBatch(); err == nil {
		t.Fatal("poisoned stream kept going")
	}
}
