package wire

import (
	"encoding/binary"
	"fmt"
)

// This file is the WAL-shipping half of the protocol. A replica tails its
// leader's write-ahead log by sending
//
//	WALFetch(fromLSN, maxBytes)
//
// and the leader answers with one
//
//	WALSegment(baseLSN, durableLSN, raw record bytes)
//
// where the LSN space is the cumulative length of the *record payloads*
// (headers and file magic excluded) across the engine's retained WAL
// generations, so an LSN is stable across checkpoints. The segment's bytes
// are whole wal-format records (length-prefixed + CRC32C, exactly the
// on-disk layout), record-aligned at both ends: the replica appends them
// verbatim to its own log and replays them through the ordinary recovery
// path. durableLSN is the leader's current fsync frontier — the replica is
// caught up when baseLSN + len(records) == durableLSN, and polls again
// later otherwise. An empty segment with baseLSN == fromLSN means "nothing
// new yet".
//
// WALFetch payload:   uvarint fromLSN | uvarint maxBytes
// WALSegment payload: uvarint baseLSN | uvarint durableLSN | record bytes

// EncodeWALFetch serializes a WALFetch frame payload.
func EncodeWALFetch(fromLSN, maxBytes uint64) []byte {
	buf := make([]byte, 0, 2*binary.MaxVarintLen64)
	buf = binary.AppendUvarint(buf, fromLSN)
	return binary.AppendUvarint(buf, maxBytes)
}

// DecodeWALFetch parses a WALFetch frame payload.
func DecodeWALFetch(payload []byte) (fromLSN, maxBytes uint64, err error) {
	d := &rdecoder{buf: payload}
	if fromLSN, err = d.uvarint(); err != nil {
		return 0, 0, err
	}
	if maxBytes, err = d.uvarint(); err != nil {
		return 0, 0, err
	}
	if d.off != len(d.buf) {
		return 0, 0, d.err("%d trailing bytes", len(d.buf)-d.off)
	}
	return fromLSN, maxBytes, nil
}

// WALSegment is one decoded WALSegment frame: a record-aligned slice of the
// leader's log starting at BaseLSN, plus the leader's durable frontier.
type WALSegment struct {
	BaseLSN    uint64
	DurableLSN uint64
	Records    []byte
}

// EncodeWALSegment serializes a WALSegment frame payload.
func EncodeWALSegment(s *WALSegment) []byte {
	buf := make([]byte, 0, 2*binary.MaxVarintLen64+len(s.Records))
	buf = binary.AppendUvarint(buf, s.BaseLSN)
	buf = binary.AppendUvarint(buf, s.DurableLSN)
	return append(buf, s.Records...)
}

// DecodeWALSegment parses a WALSegment frame payload. Record-level
// validation (CRCs, alignment) is the consumer's job — the replica runs the
// bytes through the wal decoder before trusting them.
func DecodeWALSegment(payload []byte) (*WALSegment, error) {
	d := &rdecoder{buf: payload}
	s := &WALSegment{}
	var err error
	if s.BaseLSN, err = d.uvarint(); err != nil {
		return nil, err
	}
	if s.DurableLSN, err = d.uvarint(); err != nil {
		return nil, err
	}
	s.Records = payload[d.off:]
	return s, nil
}

// FetchWAL requests one record-aligned segment of the server's WAL starting
// at fromLSN (at most maxBytes of record payload). Servers that are not
// shipping their WAL answer with an Error frame, which comes back as a
// *ServerError.
func (c *Client) FetchWAL(fromLSN, maxBytes uint64) (*WALSegment, error) {
	if err := c.begin(); err != nil {
		return nil, err
	}
	if err := c.send(FrameWALFetch, EncodeWALFetch(fromLSN, maxBytes)); err != nil {
		return nil, err
	}
	t, payload, err := ReadFrame(c.r)
	if err != nil {
		return nil, err
	}
	switch t {
	case FrameWALSegment:
		return DecodeWALSegment(payload)
	case FrameError:
		return nil, DecodeError(payload)
	default:
		return nil, fmt.Errorf("wire: unexpected %v frame in response to WALFetch", t)
	}
}
