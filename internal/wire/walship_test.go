package wire

import (
	"bytes"
	"net"
	"testing"
)

func TestWALFetchRoundTrip(t *testing.T) {
	for _, tc := range []struct{ from, max uint64 }{
		{0, 0},
		{1, 1 << 20},
		{1<<40 + 7, 123456},
	} {
		from, max, err := DecodeWALFetch(EncodeWALFetch(tc.from, tc.max))
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if from != tc.from || max != tc.max {
			t.Fatalf("round trip (%d, %d) -> (%d, %d)", tc.from, tc.max, from, max)
		}
	}
	if _, _, err := DecodeWALFetch(nil); err == nil {
		t.Fatal("empty WALFetch accepted")
	}
	if _, _, err := DecodeWALFetch(append(EncodeWALFetch(1, 2), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestWALSegmentRoundTrip(t *testing.T) {
	for _, tc := range []*WALSegment{
		{BaseLSN: 0, DurableLSN: 0, Records: nil},
		{BaseLSN: 17, DurableLSN: 17, Records: []byte{}},
		{BaseLSN: 1 << 33, DurableLSN: 1<<33 + 64, Records: []byte("raw record bytes")},
	} {
		got, err := DecodeWALSegment(EncodeWALSegment(tc))
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if got.BaseLSN != tc.BaseLSN || got.DurableLSN != tc.DurableLSN || !bytes.Equal(got.Records, tc.Records) {
			t.Fatalf("round trip %+v -> %+v", tc, got)
		}
	}
	if _, err := DecodeWALSegment([]byte{0x80}); err == nil {
		t.Fatal("truncated uvarint accepted")
	}
}

// TestClientFetchWAL drives Client.FetchWAL against a scripted peer: a
// segment comes back decoded, an Error frame comes back as *ServerError.
func TestClientFetchWAL(t *testing.T) {
	cli, srv := net.Pipe()
	defer srv.Close()
	c := NewClient(cli)
	defer c.Close()

	seg := &WALSegment{BaseLSN: 10, DurableLSN: 42, Records: []byte("recs")}
	go func() {
		ft, payload, err := ReadFrame(srv)
		if err != nil || ft != FrameWALFetch {
			return
		}
		from, max, err := DecodeWALFetch(payload)
		if err != nil || from != 10 || max != 1024 {
			_ = WriteFrame(srv, FrameError, EncodeError(ErrGeneric, 0, "bad fetch"))
			return
		}
		_ = WriteFrame(srv, FrameWALSegment, EncodeWALSegment(seg))
		// Second request: refuse — shipping not enabled.
		if _, _, err := ReadFrame(srv); err != nil {
			return
		}
		_ = WriteFrame(srv, FrameError, EncodeError(ErrGeneric, 0, "server: WAL shipping not enabled"))
	}()

	got, err := c.FetchWAL(10, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if got.BaseLSN != 10 || got.DurableLSN != 42 || !bytes.Equal(got.Records, seg.Records) {
		t.Fatalf("segment %+v", got)
	}
	if _, err := c.FetchWAL(0, 1); err == nil {
		t.Fatal("expected refusal")
	} else if _, ok := err.(*ServerError); !ok {
		t.Fatalf("error %T, want *ServerError", err)
	}
}
