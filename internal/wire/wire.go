// Package wire is the client/server protocol of the probabilistic database:
// a small length-prefixed binary framing with Query, Result, Error,
// Ping/Pong and streaming RowBatch/ResultEnd frames (see stream.go for the
// streamed-result exchange). Result frames carry rendered-free structured
// data —
// certain values in a compact tag encoding and pdfs in internal/dist's wire
// codec (the same representation economics the storage layer uses: a
// symbolic Gaussian crosses the network in 17 bytes) — plus the per-query
// execution stats (rows, latency, buffer-pool page reads/hits) so the
// paper's Fig. 5 I/O accounting survives the network boundary.
//
// Framing:
//
//	| u32 big-endian n | u8 type | n−1 bytes payload |
//
// where n counts the type byte plus the payload, 1 ≤ n ≤ 1+MaxPayload.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// MaxPayload bounds a frame's payload so a corrupted or hostile length
// prefix cannot trigger an enormous allocation.
const MaxPayload = 16 << 20

// FrameType discriminates the protocol's frames.
type FrameType byte

// The protocol's frame types. Clients send Query and Ping; servers answer
// with Result or Error, and Pong — or, for streamed SELECTs, a sequence of
// RowBatch frames terminated by one ResultEnd carrying the stats (which are
// only known once the last row has been produced).
const (
	FrameQuery FrameType = iota + 1
	FrameResult
	FrameError
	FramePing
	FramePong
	FrameRowBatch
	FrameResultEnd
	// WAL shipping (replication): a replica sends WALFetch(fromLSN,
	// maxBytes) and the leader answers with one WALSegment carrying raw,
	// record-aligned WAL bytes starting at that LSN (see walship.go).
	FrameWALFetch
	FrameWALSegment
)

// String names the frame type.
func (t FrameType) String() string {
	switch t {
	case FrameQuery:
		return "Query"
	case FrameResult:
		return "Result"
	case FrameError:
		return "Error"
	case FramePing:
		return "Ping"
	case FramePong:
		return "Pong"
	case FrameRowBatch:
		return "RowBatch"
	case FrameResultEnd:
		return "ResultEnd"
	case FrameWALFetch:
		return "WALFetch"
	case FrameWALSegment:
		return "WALSegment"
	}
	return fmt.Sprintf("FrameType(%d)", byte(t))
}

func validFrameType(t FrameType) bool { return t >= FrameQuery && t <= FrameWALSegment }

// WriteFrame writes one frame.
func WriteFrame(w io.Writer, t FrameType, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("wire: payload %d exceeds limit %d", len(payload), MaxPayload)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame. It returns the frame type and payload, or an
// error for malformed framing (bad length, unknown type, short read).
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < 1 || n > MaxPayload+1 {
		return 0, nil, fmt.Errorf("wire: bad frame length %d", n)
	}
	t := FrameType(hdr[4])
	if !validFrameType(t) {
		return 0, nil, fmt.Errorf("wire: unknown frame type %d", hdr[4])
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return t, payload, nil
}
