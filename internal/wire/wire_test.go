package wire

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"probdb/internal/core"
	"probdb/internal/dist"
	"probdb/internal/region"
)

// TestFrameRoundTrip writes and reads back every frame type.
func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		t       FrameType
		payload []byte
	}{
		{FrameQuery, []byte("SELECT rid FROM readings WHERE PROB(value) > 0.5")},
		{FrameResult, EncodeResult(&Result{Message: "ok", Affected: 3})},
		{FrameError, []byte("query: no table \"nope\"")},
		{FramePing, nil},
		{FramePong, nil},
		{FrameQuery, bytes.Repeat([]byte("x"), 1<<16)}, // multi-page payload
	}
	for _, c := range cases {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, c.t, c.payload); err != nil {
			t.Fatalf("%v: write: %v", c.t, err)
		}
		ft, payload, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("%v: read: %v", c.t, err)
		}
		if ft != c.t {
			t.Fatalf("type %v, want %v", ft, c.t)
		}
		if !bytes.Equal(payload, c.payload) {
			t.Fatalf("%v: payload mismatch (%d vs %d bytes)", c.t, len(payload), len(c.payload))
		}
	}
}

func TestFrameRejectsMalformedHeader(t *testing.T) {
	// Zero length (no type byte).
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Fatal("zero-length frame accepted")
	}
	// Length above the cap.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff, byte(FramePing)})); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// Unknown frame type.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 1, 99})); err == nil {
		t.Fatal("unknown frame type accepted")
	}
	// Truncated payload.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 5, byte(FrameQuery), 'S'})); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

// TestResultRoundTrip encodes and decodes a Result with every cell variant:
// all value kinds, a symbolic pdf, a floored pdf, a discrete pdf, and a
// missing cell, plus full stats.
func TestResultRoundTrip(t *testing.T) {
	gauss := dist.NewGaussian(20, 5)
	floored := gauss.Floor(0, region.NewSet(region.Below(25, true)))
	disc := dist.NewDiscrete([]float64{1, 3}, []float64{0.4, 0.6})
	in := &Result{
		Message:  "3 rows",
		Affected: 3,
		Stats: Stats{
			Rows: 3, LatencyMicros: 1234,
			PageReads: 7, PageHits: 40, PageWrites: 2,
			IndexProbes: 1, IndexPruned: 88, PlannerFallbacks: 1,
		},
		Table: &Table{
			Name: "σ(readings)",
			Cols: []Column{
				{Name: "rid", Type: core.IntType},
				{Name: "name", Type: core.StringType},
				{Name: "flag", Type: core.BoolType},
				{Name: "ratio", Type: core.FloatType},
				{Name: "value", Type: core.FloatType, Uncertain: true},
				{Name: "cnt", Type: core.IntType, Uncertain: true},
			},
			Rows: []Row{
				{Exists: 1, Cells: []Cell{
					{Kind: CellValue, Value: core.Int(1)},
					{Kind: CellValue, Value: core.Str("alpha")},
					{Kind: CellValue, Value: core.Bool(true)},
					{Kind: CellValue, Value: core.Float(0.25)},
					{Kind: CellPDF, PDF: gauss},
					{Kind: CellPDF, PDF: disc},
				}},
				{Exists: 0.5, Cells: []Cell{
					{Kind: CellValue, Value: core.Int(-9)},
					{Kind: CellValue, Value: core.Null},
					{Kind: CellValue, Value: core.Bool(false)},
					{Kind: CellValue, Value: core.Float(math.Inf(1))},
					{Kind: CellPDF, PDF: floored},
					{Kind: CellNone},
				}},
			},
		},
	}

	payload := EncodeResult(in)
	out, err := DecodeResult(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.Message != in.Message || out.Affected != in.Affected || out.Stats != in.Stats {
		t.Fatalf("scalar fields: %+v vs %+v", out, in)
	}
	if out.Table == nil || out.Table.Name != in.Table.Name {
		t.Fatalf("table name lost: %+v", out.Table)
	}
	if !reflect.DeepEqual(out.Table.Cols, in.Table.Cols) {
		t.Fatalf("cols: %+v vs %+v", out.Table.Cols, in.Table.Cols)
	}
	if len(out.Table.Rows) != 2 {
		t.Fatalf("rows: %d", len(out.Table.Rows))
	}
	for ri, row := range out.Table.Rows {
		want := in.Table.Rows[ri]
		if row.Exists != want.Exists {
			t.Fatalf("row %d exists %v vs %v", ri, row.Exists, want.Exists)
		}
		for ci, cell := range row.Cells {
			wc := want.Cells[ci]
			if cell.Kind != wc.Kind {
				t.Fatalf("row %d cell %d kind %v vs %v", ri, ci, cell.Kind, wc.Kind)
			}
			switch cell.Kind {
			case CellValue:
				// Value.Equal has SQL NULL semantics (NULL ≠ NULL), so
				// compare NULLs by kind.
				if wc.Value.IsNull() {
					if !cell.Value.IsNull() {
						t.Fatalf("row %d cell %d: want NULL, got %v", ri, ci, cell.Value)
					}
				} else if !cell.Value.Equal(wc.Value) {
					t.Fatalf("row %d cell %d value %v vs %v", ri, ci, cell.Value, wc.Value)
				}
			case CellPDF:
				// The pdf survives with its distribution intact: same mass,
				// mean and rendering.
				if math.Abs(cell.PDF.Mass()-wc.PDF.Mass()) > 1e-12 {
					t.Fatalf("row %d cell %d mass %v vs %v", ri, ci, cell.PDF.Mass(), wc.PDF.Mass())
				}
				if got, want := cell.PDF.String(), wc.PDF.String(); got != want {
					t.Fatalf("row %d cell %d pdf %q vs %q", ri, ci, got, want)
				}
			}
		}
	}

	// Rendering must include symbolic pdf forms and the existence marker.
	rendered := out.String()
	for _, want := range []string{"Gaus(20,", "Floor{", "rid=1", `name="alpha"`, "Pr(exists)=0.5", "?"} {
		if !bytes.Contains([]byte(rendered), []byte(want)) {
			t.Fatalf("rendering misses %q:\n%s", want, rendered)
		}
	}
}

// TestResultMessageOnly round-trips a table-less command result.
func TestResultMessageOnly(t *testing.T) {
	in := &Result{Message: "created readings (rid INT, value FLOAT UNCERTAIN)", Affected: 0,
		Stats: Stats{LatencyMicros: 55, PageWrites: 1}}
	out, err := DecodeResult(EncodeResult(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Table != nil || out.Message != in.Message || out.Stats != in.Stats {
		t.Fatalf("round trip: %+v", out)
	}
	if out.String() != in.Message {
		t.Fatalf("String() = %q", out.String())
	}
}

// TestResultDecodeRejectsTruncations truncates a valid payload at every
// byte offset: each prefix must error, never panic.
func TestResultDecodeRejectsTruncations(t *testing.T) {
	payload := EncodeResult(&Result{
		Message: "m",
		Table: &Table{
			Name: "t",
			Cols: []Column{{Name: "x", Type: core.FloatType, Uncertain: true}},
			Rows: []Row{{Exists: 1, Cells: []Cell{{Kind: CellPDF, PDF: dist.NewGaussian(0, 1)}}}},
		},
	})
	for cut := 0; cut < len(payload); cut++ {
		if _, err := DecodeResult(payload[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(payload))
		}
	}
	if _, err := DecodeResult(append(append([]byte{}, payload...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestFromTable converts an executed query result into wire form and back.
func TestFromTable(t *testing.T) {
	schema := core.MustSchema(
		core.Column{Name: "rid", Type: core.IntType},
		core.Column{Name: "value", Type: core.FloatType, Uncertain: true},
	)
	tb := core.MustTable("readings", schema, nil, nil)
	if err := tb.Insert(core.Row{
		Values: map[string]core.Value{"rid": core.Int(7)},
		PDFs:   []core.PDF{{Attrs: []string{"value"}, Dist: dist.NewGaussian(20, 5)}},
	}); err != nil {
		t.Fatal(err)
	}
	wt := FromTable(tb)
	out, err := DecodeResult(EncodeResult(&Result{Table: wt}))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Table.Rows) != 1 {
		t.Fatalf("rows: %d", len(out.Table.Rows))
	}
	row := out.Table.Rows[0]
	if !row.Cells[0].Value.Equal(core.Int(7)) {
		t.Fatalf("rid cell: %+v", row.Cells[0])
	}
	if row.Cells[1].Kind != CellPDF || math.Abs(row.Cells[1].PDF.Mean(0)-20) > 1e-9 {
		t.Fatalf("value cell: %+v", row.Cells[1])
	}
}
