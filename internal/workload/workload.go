// Package workload generates the synthetic datasets and query workloads of
// the paper's experimental evaluation (§IV): random "sensor readings" with
// the schema Readings(rid, value) whose uncertain pdfs are Gaussians with
// means uniform in [0, 100] and standard deviations ~ N(2, 0.5²), and range
// queries with midpoints uniform in [0, 100] and interval lengths
// ~ N(10, 3²). All generators are seeded and deterministic.
package workload

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"probdb/internal/dist"
)

// Paper parameters (§IV).
const (
	MeanLo         = 0.0
	MeanHi         = 100.0
	SigmaMean      = 2.0
	SigmaStddev    = 0.5
	QueryLenMean   = 10.0
	QueryLenStddev = 3.0
)

// minSigma keeps degenerate negative/zero draws of the stddev distribution
// usable; N(2, 0.5²) dips below this only with probability ~6e-5.
const minSigma = 0.05

// Reading is one synthetic sensor reading: an identifier and an uncertain
// value.
type Reading struct {
	RID   int64
	Value dist.Dist
}

// Gen deterministically generates paper-style workloads.
type Gen struct {
	r *rand.Rand
}

// NewGen returns a generator with the given seed.
func NewGen(seed int64) *Gen {
	return &Gen{r: rand.New(rand.NewSource(seed))}
}

// Reading draws one sensor reading with the paper's distribution of
// parameters.
func (g *Gen) Reading(rid int64) Reading {
	mu := MeanLo + g.r.Float64()*(MeanHi-MeanLo)
	sigma := SigmaMean + g.r.NormFloat64()*SigmaStddev
	if sigma < minSigma {
		sigma = minSigma
	}
	return Reading{RID: rid, Value: dist.NewGaussian(mu, sigma)}
}

// Readings draws n readings with RIDs 0..n-1.
func (g *Gen) Readings(n int) []Reading {
	out := make([]Reading, n)
	for i := range out {
		out[i] = g.Reading(int64(i))
	}
	return out
}

// SkewedReading draws a reading whose mean follows a power-law placement
// instead of the paper's uniform one: mean = lo + (hi-lo) * u^(1+skew), so
// larger skew concentrates the population toward the low end of the value
// domain. Skew 0 degenerates to the uniform paper workload. The non-uniform
// density is what makes ANALYZE's histograms earn their keep — equi-width
// buckets then carry real selectivity signal instead of a flat profile.
func (g *Gen) SkewedReading(rid int64, skew float64) Reading {
	if skew < 0 {
		skew = 0
	}
	u := math.Pow(g.r.Float64(), 1+skew)
	mu := MeanLo + u*(MeanHi-MeanLo)
	sigma := SigmaMean + g.r.NormFloat64()*SigmaStddev
	if sigma < minSigma {
		sigma = minSigma
	}
	return Reading{RID: rid, Value: dist.NewGaussian(mu, sigma)}
}

// SkewedReadings draws n skewed readings with RIDs 0..n-1.
func (g *Gen) SkewedReadings(n int, skew float64) []Reading {
	out := make([]Reading, n)
	for i := range out {
		out[i] = g.SkewedReading(int64(i), skew)
	}
	return out
}

// RangeQuery is one synthetic range query [Lo, Hi].
type RangeQuery struct {
	Lo, Hi float64
}

// Mid returns the query midpoint.
func (q RangeQuery) Mid() float64 { return (q.Lo + q.Hi) / 2 }

// Len returns the interval length.
func (q RangeQuery) Len() float64 { return q.Hi - q.Lo }

// RangeQuery draws one range query with the paper's parameters.
func (g *Gen) RangeQuery() RangeQuery {
	mid := MeanLo + g.r.Float64()*(MeanHi-MeanLo)
	length := QueryLenMean + g.r.NormFloat64()*QueryLenStddev
	if length < 0.1 {
		length = 0.1
	}
	return RangeQuery{Lo: mid - length/2, Hi: mid + length/2}
}

// RangeQueries draws n range queries.
func (g *Gen) RangeQueries(n int) []RangeQuery {
	out := make([]RangeQuery, n)
	for i := range out {
		out[i] = g.RangeQuery()
	}
	return out
}

// EncodeReading serializes a reading for the storage engine: the rid
// followed by the pdf in the dist wire format. The representation chosen
// for Value (symbolic, histogram, discrete sampling) is what determines the
// record size — the storage-cost lever of Fig. 5.
func EncodeReading(rd Reading) []byte {
	buf := binary.AppendVarint(nil, rd.RID)
	return dist.AppendEncode(buf, rd.Value)
}

// DecodeReading parses a reading record.
func DecodeReading(rec []byte) (Reading, error) {
	rid, n := binary.Varint(rec)
	if n <= 0 {
		return Reading{}, fmt.Errorf("workload: bad rid varint")
	}
	d, used, err := dist.Decode(rec[n:])
	if err != nil {
		return Reading{}, err
	}
	if n+used != len(rec) {
		return Reading{}, fmt.Errorf("workload: %d trailing bytes in reading record", len(rec)-n-used)
	}
	return Reading{RID: rid, Value: d}, nil
}

// DecodeReadingValue parses only the pdf of a reading record — the hot path
// of storage scans, avoiding the struct when the rid is not needed.
func DecodeReadingValue(rec []byte) (dist.Dist, error) {
	_, n := binary.Varint(rec)
	if n <= 0 {
		return nil, fmt.Errorf("workload: bad rid varint")
	}
	d, _, err := dist.Decode(rec[n:])
	return d, err
}
