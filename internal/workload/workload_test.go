package workload

import (
	"math"
	"testing"

	"probdb/internal/dist"
)

func TestGenDeterministic(t *testing.T) {
	a := NewGen(42).Readings(50)
	b := NewGen(42).Readings(50)
	for i := range a {
		if a[i].Value.String() != b[i].Value.String() {
			t.Fatalf("reading %d differs across same-seed runs", i)
		}
	}
	if c := NewGen(43).Readings(50); c[0].Value.String() == a[0].Value.String() {
		t.Error("different seeds should differ")
	}
}

func TestReadingParameterDistributions(t *testing.T) {
	g := NewGen(7)
	rs := g.Readings(20000)
	var muSum, sigmaSum float64
	muMin, muMax := math.Inf(1), math.Inf(-1)
	for _, r := range rs {
		gg := r.Value.(interface{ Mean(int) float64 })
		mu := gg.Mean(0)
		sigma := math.Sqrt(r.Value.Variance(0))
		muSum += mu
		sigmaSum += sigma
		if mu < muMin {
			muMin = mu
		}
		if mu > muMax {
			muMax = mu
		}
		if sigma < minSigma {
			t.Fatalf("sigma %v below floor", sigma)
		}
	}
	n := float64(len(rs))
	if got := muSum / n; math.Abs(got-50) > 1 {
		t.Errorf("mean of means = %v, want ~50", got)
	}
	if muMin < 0 || muMax > 100 {
		t.Errorf("means outside [0,100]: %v..%v", muMin, muMax)
	}
	if got := sigmaSum / n; math.Abs(got-SigmaMean) > 0.05 {
		t.Errorf("mean sigma = %v, want ~%v", got, SigmaMean)
	}
}

func TestRangeQueryParameters(t *testing.T) {
	g := NewGen(9)
	qs := g.RangeQueries(20000)
	var lenSum float64
	for _, q := range qs {
		if q.Len() <= 0 {
			t.Fatalf("non-positive query length %v", q.Len())
		}
		lenSum += q.Len()
	}
	if got := lenSum / float64(len(qs)); math.Abs(got-QueryLenMean) > 0.2 {
		t.Errorf("mean query length = %v, want ~%v", got, QueryLenMean)
	}
}

func TestReadingCodecRoundTrip(t *testing.T) {
	g := NewGen(3)
	for _, rd := range g.Readings(20) {
		for _, repr := range []dist.Dist{
			rd.Value,
			dist.ToHistogram(rd.Value, 5),
			dist.Discretize(rd.Value, 25),
		} {
			rec := EncodeReading(Reading{RID: rd.RID, Value: repr})
			back, err := DecodeReading(rec)
			if err != nil {
				t.Fatal(err)
			}
			if back.RID != rd.RID {
				t.Errorf("rid %d != %d", back.RID, rd.RID)
			}
			if back.Value.String() != repr.String() {
				t.Errorf("pdf %v != %v", back.Value, repr)
			}
			d, err := DecodeReadingValue(rec)
			if err != nil || d.String() != repr.String() {
				t.Errorf("value-only decode mismatch: %v, %v", d, err)
			}
		}
	}
}

func TestDecodeReadingErrors(t *testing.T) {
	if _, err := DecodeReading(nil); err == nil {
		t.Error("empty record should fail")
	}
	rec := EncodeReading(Reading{RID: 1, Value: dist.NewGaussian(0, 1)})
	if _, err := DecodeReading(rec[:5]); err == nil {
		t.Error("truncated record should fail")
	}
	if _, err := DecodeReading(append(rec, 0)); err == nil {
		t.Error("trailing bytes should fail")
	}
}

func TestRecordSizeOrdering(t *testing.T) {
	// The Fig. 5 premise at the record level.
	g := NewGen(5)
	rd := g.Reading(0)
	sym := len(EncodeReading(rd))
	hist := len(EncodeReading(Reading{RID: 0, Value: dist.ToHistogram(rd.Value, 5)}))
	disc := len(EncodeReading(Reading{RID: 0, Value: dist.Discretize(rd.Value, 25)}))
	if !(sym < hist && hist < disc) {
		t.Errorf("size ordering violated: %d / %d / %d", sym, hist, disc)
	}
}
